// Package fleet is the orchestration layer that scales the paper's
// single-device pipeline to a device population. It instantiates N
// concurrent device pipelines (smart speakers and camera doorbells in a
// mix of deployment modes, via the core device factory), multiplexes
// their cloud-bound traffic into a sharded ingest tier (per-shard
// provider endpoints behind a consistent-hash router, bounded worker
// pools, channel backpressure), and drives secure speakers through the
// TA's batched-inference path so a device pays one world-switch round
// trip per utterance batch instead of per utterance.
//
// In attested deployments (Config.Attest) the orchestration also runs
// the trust handshake the confidential-computing model demands: every
// device's TEE signs a measurement report over a verifier challenge
// before its endpoint joins the ring, the verifier gates every ingested
// frame, and a staged model rollout (Config.Rollout) moves the fleet
// from one sealed model-pack version to the next — canary cohort first,
// full fleet after the canary verdict — with hot-swaps that never drop
// an in-flight batch. See internal/attest for the protocol pieces.
//
// Everything below the orchestration is the unmodified per-device
// simulation: virtual-cycle latencies stay deterministic per root seed;
// only wall-clock throughput depends on the host.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/peripheral"
	"repro/internal/sensitive"
)

// ErrBadConfig is returned for invalid fleet configurations.
var ErrBadConfig = errors.New("fleet: invalid config")

// Config parameterizes one fleet run.
type Config struct {
	// Devices is the population size.
	Devices int
	// DoorbellFraction is the share of camera doorbells (the rest are
	// smart speakers). 0 means default (0.25); pass any negative value
	// for an explicitly speakers-only fleet.
	DoorbellFraction float64
	// Mix weights the deployment modes across speakers, keyed by
	// core.Mode (see MixSpec); nil means the default 1:1:1 over
	// baseline : secure-nofilter : secure-filter. Doorbells alternate
	// baseline and secure-filter (the no-filter middle mode is
	// meaningless for images), plus hybrid-he when the mix weights it.
	// The historical positional form converts via LegacyMix.
	Mix MixSpec

	// Shards is the number of ingest partitions; default 4.
	Shards int
	// ShardWorkers is the worker-pool size per shard; default 4.
	ShardWorkers int
	// ShardQueue is the per-shard admission-queue depth (backpressure);
	// default 2×ShardWorkers.
	ShardQueue int
	// HashReplicas is the consistent-hash ring points per shard;
	// default 64.
	HashReplicas int

	// DeviceWorkers bounds concurrently running device pipelines;
	// default GOMAXPROCS. Ignored when Async is set: the event-driven
	// engine's concurrency is bounded by Async.Executors instead (the
	// periguard-fleet CLI rejects -workers combined with -async so the
	// precedence cannot pass silently).
	DeviceWorkers int
	// Batch is the TA batch size for secure speakers (1 disables
	// batching); default 4, capped at core.MaxBatch. When the cap
	// applies, the clamp is surfaced in Result.RequestedBatch vs
	// Result.EffectiveBatch rather than silently rewriting the config.
	Batch int

	// Sched enables the shared cross-device TEE inference scheduler:
	// secure-filter speakers submit their classify stage to per-model-
	// version queues that flush on batch-full or max-age, replacing the
	// per-device forward pass with one shared batched pass. Audits are
	// bit-identical to the per-device path — the scheduler is latency
	// machinery only. Nil keeps the per-device path.
	Sched *SchedSpec

	// Async replaces the goroutine-per-device worker pool with the
	// event-driven continuation engine: device state lives in a task
	// table driven by a bounded executor pool, and scheduled secure-filter
	// speakers park between transcription and the shared classify flush
	// (capture → enqueue → batched classify → uplink as continuations)
	// instead of blocking a goroutine per device. Audits are bit-identical
	// to the synchronous path. Nil keeps the per-device worker pool.
	Async *AsyncSpec

	// Utterances per speaker (default 4) and Frames per doorbell
	// (default 6).
	Utterances int
	Frames     int
	// SensitiveFraction of the workload carries private content.
	// 0 means default (0.4); negative means an explicitly all-benign
	// workload; 1 means all-sensitive.
	SensitiveFraction float64

	// Seed is the root seed: device seeds, workloads and the shared
	// provisioned model all derive from it. Default 1.
	Seed uint64
	// FreqHz is the modelled core frequency; default 1 GHz.
	FreqHz uint64

	// Churn drives mid-run population churn: joiners that arrive while
	// the base population is processing (full provision → attest →
	// handshake on arrival) and leavers that depart early, releasing
	// their sessions cleanly. Nil means a static population.
	Churn *ChurnSpec
	// Rebalance schedules a mid-run ingest-tier rebalance (add weighted
	// shards and/or drain one) at a configurable point in the run. Nil
	// means a static tier.
	Rebalance *RebalanceSpec
	// Policy selects the per-shard admission policy: "" or "fixed"
	// (blocking fixed-depth queue, the PR-1 behaviour), "shed"
	// (load-shedding above the queue high-water mark), "fair" (per-tenant
	// fair share). Priority frames are never shed under any policy.
	Policy string
	// Tenants is the number of billing tenants device traffic is striped
	// across (the fair-share policy's unit of accounting); default 4.
	Tenants int

	// Attest enables remote attestation: every device produces TA-signed
	// evidence before its endpoint joins the ring, and the ingest tier
	// rejects frames from unattested or stale-model devices.
	Attest bool
	// Rollout stages an online model rollout during the run (implies
	// Attest); see RolloutSpec.
	Rollout *RolloutSpec
	// Rogues adds adversarial clients that register ingest endpoints
	// without attesting; the admission gate must reject every frame they
	// send. Setting Rogues implies Attest.
	Rogues int
	// Lifecycle drives mid-run attestation-lifecycle events: key
	// rotations issued while the rotating devices' frames are in flight
	// (the verifier honors the old epoch under a grace window until the
	// device redeems the token in its TEE and re-attests), and
	// revocations of completed devices followed by probe frames that the
	// ingest tier must reject — not shed. Implies Attest.
	Lifecycle *LifecycleSpec
	// Federate gives every tenant its own attestation verifier: digest
	// policy, minimum model version, key epochs and revocation list are
	// tenant-owned, and the ingest tier routes every frame's admission
	// by the tenant label the frontend reads from the connection.
	// Implies Attest.
	Federate bool

	// Faults compiles a deterministic chaos plan against the run: seeded
	// uplink drops/duplicates/delays/expiries on a touched subset of the
	// population, scheduled shard crash/restart cycles healed by a
	// supervisor, a run-long slow shard, and transient TEE provisioning
	// errors — all replayable from the plan seed. Nil disables chaos
	// entirely (no injector, no retry layer, no supervisor on the hot
	// path).
	Faults *FaultSpec

	// Trace enables end-to-end frame telemetry: virtual-time tracing
	// spans on a deterministic 1-in-N device sample, per-shard flight
	// recorders dumped on anomaly, and the aggregated histogram registry
	// in Result.Telemetry. Nil disables telemetry entirely — untraced
	// runs pay nothing on the hot path.
	Trace *TraceSpec
}

// TraceSpec parameterizes the run's frame telemetry.
type TraceSpec struct {
	// SampleEvery traces 1 in N devices; the decision is a pure function
	// of each device's trace seed (core.SaltTrace off the root seed), so
	// the sampled set — and the exported dump — is bit-reproducible.
	// Default 64; 1 traces every device.
	SampleEvery int
}

func (t *TraceSpec) fillDefaults() error {
	if t.SampleEvery < 0 {
		return fmt.Errorf("%w: trace sample rate %d", ErrBadConfig, t.SampleEvery)
	}
	if t.SampleEvery == 0 {
		t.SampleEvery = 64
	}
	return nil
}

func (c *Config) fillDefaults() error {
	if c.Devices <= 0 {
		c.Devices = 16
	}
	if c.DoorbellFraction > 1 {
		return fmt.Errorf("%w: doorbell fraction %g", ErrBadConfig, c.DoorbellFraction)
	}
	switch {
	case c.DoorbellFraction == 0:
		c.DoorbellFraction = 0.25
	case c.DoorbellFraction < 0:
		c.DoorbellFraction = 0
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if err := c.Mix.validate(); err != nil {
		return err
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.ShardWorkers <= 0 {
		c.ShardWorkers = 4
	}
	if c.ShardQueue <= 0 {
		c.ShardQueue = 2 * c.ShardWorkers
	}
	if c.HashReplicas <= 0 {
		c.HashReplicas = 64
	}
	if c.DeviceWorkers <= 0 {
		c.DeviceWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = 4
	}
	// The per-device clamp is kept for compatibility, but Run records the
	// requested value and surfaces both in the Result so a bench config
	// cannot silently claim a batch size the TA never ran.
	if c.Batch > core.MaxBatch {
		c.Batch = core.MaxBatch
	}
	if c.Sched != nil {
		if err := c.Sched.fillDefaults(c.Batch); err != nil {
			return err
		}
	}
	if c.Async != nil {
		if err := c.Async.fillDefaults(); err != nil {
			return err
		}
		// Rollout convergence blocks in AwaitFull until the canary cohort
		// reports; on a bounded executor pool the blocked non-canary tasks
		// would occupy every executor and starve the canaries they wait
		// for. The composition is rejected rather than allowed to deadlock.
		if c.Rollout != nil {
			return fmt.Errorf("%w: the async pipeline cannot compose with a staged rollout", ErrBadConfig)
		}
	}
	if c.Utterances <= 0 {
		c.Utterances = 4
	}
	if c.Frames <= 0 {
		c.Frames = 6
	}
	if c.SensitiveFraction > 1 {
		return fmt.Errorf("%w: sensitive fraction %g", ErrBadConfig, c.SensitiveFraction)
	}
	switch {
	case c.SensitiveFraction == 0:
		c.SensitiveFraction = 0.4
	case c.SensitiveFraction < 0:
		c.SensitiveFraction = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FreqHz == 0 {
		c.FreqHz = 1_000_000_000
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if _, ok := cloud.PolicyByName(c.Policy); !ok {
		return fmt.Errorf("%w: admission policy %q", ErrBadConfig, c.Policy)
	}
	if c.Churn != nil {
		if err := c.Churn.fillDefaults(c.Seed); err != nil {
			return err
		}
	}
	if c.Rebalance != nil {
		if err := c.Rebalance.fillDefaults(c.Shards); err != nil {
			return err
		}
	}
	if c.Rollout != nil {
		c.Attest = true
		if c.Rollout.CanaryFraction <= 0 {
			c.Rollout.CanaryFraction = 0.1
		}
		if c.Rollout.CanaryFraction > 1 {
			return fmt.Errorf("%w: canary fraction %g", ErrBadConfig, c.Rollout.CanaryFraction)
		}
	}
	if c.Rogues < 0 {
		return fmt.Errorf("%w: %d rogues", ErrBadConfig, c.Rogues)
	}
	// Rogue clients only make sense against an admission gate; asking
	// for them turns the gate on rather than silently doing nothing.
	if c.Rogues > 0 {
		c.Attest = true
	}
	if c.Lifecycle != nil {
		if err := c.Lifecycle.fillDefaults(c.Seed); err != nil {
			return err
		}
		c.Attest = true
	}
	if c.Federate {
		c.Attest = true
	}
	if c.Trace != nil {
		if err := c.Trace.fillDefaults(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.fillDefaults(c.Seed, c.Shards); err != nil {
			return err
		}
	}
	return nil
}

// DeviceID names fleet member i on the ingest tier.
func DeviceID(i int) string { return fmt.Sprintf("device-%05d", i) }

// memberSpec derives the identity fields every fleet member — base
// population and churn joiners alike — gets the same way from its
// global index: device seed, shared model seed, attestation enrollment.
// Kind and mode are assigned by the caller's interleaving loop.
func memberSpec(cfg Config, i int) core.DeviceSpec {
	spec := core.DeviceSpec{
		Seed:      core.DeriveSeed(cfg.Seed, core.SaltDeviceSeed, i),
		ModelSeed: cfg.Seed,
		FreqHz:    cfg.FreqHz,
		Batch:     cfg.Batch,
		DeviceID:  DeviceID(i),
	}
	if cfg.Attest {
		// Enrollment: the device's attestation-key seed is derived from
		// the root seed exactly like its other per-device streams; the
		// verifier derives the same key from the same registry.
		spec.AttestKeySeed = core.DeriveSeed(cfg.Seed, core.SaltAttestKey, i)
		spec.ModelVersion = 1
	}
	return spec
}

// Plan lays out the population deterministically: device i's kind comes
// from the doorbell fraction, its mode from the weighted mix, its seed
// from the root seed. The shared ModelSeed models one provider-trained
// model provisioned to every device.
func Plan(cfg Config) ([]core.DeviceSpec, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	specs := make([]core.DeviceSpec, cfg.Devices)
	doorbells := int(float64(cfg.Devices) * cfg.DoorbellFraction)
	stride := cfg.Devices
	if doorbells > 0 {
		stride = cfg.Devices / doorbells
	}
	speakerModes := weightedModes(cfg.Mix)
	dbModes := doorbellModes(cfg.Mix)
	nSpeaker, nDoorbell := 0, 0
	for i := range specs {
		spec := memberSpec(cfg, i)
		// Interleave doorbells evenly through the population.
		if doorbells > 0 && i%stride == 0 && nDoorbell < doorbells {
			spec.Kind = core.DeviceDoorbell
			spec.Mode = dbModes[nDoorbell%len(dbModes)]
			nDoorbell++
		} else {
			spec.Kind = core.DeviceSpeaker
			spec.Mode = speakerModes[nSpeaker%len(speakerModes)]
			nSpeaker++
		}
		specs[i] = spec
	}
	return specs, nil
}

// GroupKey identifies one (kind, mode) slice of the population.
type GroupKey struct {
	Kind core.DeviceKind
	Mode core.Mode
}

// String renders "speaker/secure-filter"-style labels.
func (k GroupKey) String() string { return k.Kind.String() + "/" + k.Mode.String() }

// GroupStats aggregates one population slice.
type GroupStats struct {
	Devices int
	// Items processed: utterances for speakers, frames for doorbells.
	Items int
	// CloudEvents the slice pushed through the ingest tier.
	CloudEvents int
	// SensitiveTokens the provider observed from this slice (speakers).
	SensitiveTokens int
	// PersonFrames that reached the provider (doorbells; baseline
	// doorbells count locally-uploaded person frames).
	PersonFrames int
	// Latency is the merged per-item virtual-cycle recorder.
	Latency *metrics.Recorder
}

// Result aggregates one fleet run.
type Result struct {
	Config Config

	// BuildWall and RunWall split shared-model provisioning from the
	// processing phase; throughput figures use RunWall only. With lazy
	// device construction, BuildWall covers the one-time training of the
	// shared model pack, while RunWall covers per-device (lazy) pipeline
	// construction plus workload processing.
	BuildWall time.Duration
	RunWall   time.Duration

	// Groups slices the fleet by (kind, mode).
	Groups map[GroupKey]*GroupStats
	// Latency merges every device's per-item recorder.
	Latency *metrics.Recorder

	// Audit is the cross-shard aggregate of everything the provider tier
	// ingested — including what departed (churned-out) devices delivered
	// before releasing their endpoints; ShardStats the per-shard counters
	// (drained shards appear with Drained=true).
	Audit      cloud.Audit
	ShardStats []cloud.ShardStats

	// DeviceResults holds every device's per-run outcome, indexed like
	// the population plan (base devices 0..Devices-1, then joiners).
	// The churn invariant is checked against these: a non-churned
	// device's result is bit-identical to its result in a static run.
	DeviceResults []*core.DeviceResult

	// Churn/elasticity observability (zero values on static runs).

	// Joined and Left count mid-run arrivals and clean departures;
	// Leavers lists the departed base-device indices (sorted), so the
	// non-churned sub-population is recoverable from the result.
	Joined, Left int
	Leavers      []int
	// PolicyName is the admission policy the ingest tier ran.
	PolicyName string
	// Rebalance summarizes the scheduled mid-run rebalance, if one was
	// configured.
	Rebalance *RebalanceReport
	// Faults summarizes the chaos plan's injections and the recovery
	// machinery's response, if chaos was configured.
	Faults *FaultReport

	// ExpectedCloudEvents is the sum of per-device expectations; a lossless
	// ingest tier has Audit.Events == ExpectedCloudEvents and zero shard
	// errors.
	ExpectedCloudEvents int
	// TotalItems counts utterances + frames processed fleet-wide.
	TotalItems int

	// RequestedBatch is the per-device TA batch the config asked for
	// (after defaulting); EffectiveBatch is what actually ran. They
	// differ only when the request exceeded core.MaxBatch — the clamp is
	// surfaced here so benches cannot report a batch size the TA never
	// used.
	RequestedBatch int
	EffectiveBatch int
	// Sched summarizes the cross-device scheduler's flush behavior (nil
	// when the per-device classify path ran).
	Sched *SchedReport
	// Async summarizes the event-driven engine's execution (nil when the
	// per-device worker pool ran).
	Async *AsyncReport

	// Attested-run observability (zero values outside Attest mode).

	// AttestedDevices counts devices holding a verified measurement.
	AttestedDevices int
	// ModelVersions tallies model-bearing devices per attested pack
	// version, fleet-wide.
	ModelVersions map[uint64]int
	// ShardModelVersions is the same tally per ingest shard (rollout
	// progress as the provider observes it).
	ShardModelVersions map[string]map[uint64]int
	// Rollout summarizes the staged rollout, if one was configured.
	Rollout *RolloutReport
	// RogueAttempts/RogueRejected/UnattestedIngested account for the
	// adversarial unattested clients: every attempt must be rejected and
	// no frame may reach an endpoint.
	RogueAttempts      int
	RogueRejected      int
	UnattestedIngested int

	// Lifecycle observability (zero values outside Lifecycle mode).

	// Rotated counts devices that redeemed a key rotation in their TEE
	// and re-attested at the new epoch; KeyEpochs tallies attested
	// devices per key epoch at run end (revoked devices excluded — their
	// attested state is gone).
	Rotated   int
	KeyEpochs map[uint64]int
	// Revoked counts devices put on the revocation list mid-run;
	// RevokeProbes frames were then fired under their identities and
	// RevokeRejected of them were rejected (not shed) at the frontend —
	// a correct gate keeps the two equal. RevokeDelivered counts probes
	// that reached an endpoint anyway: a gate bypass, which must be 0.
	Revoked         int
	RevokeProbes    int
	RevokeRejected  int
	RevokeDelivered int

	// TenantAttested tallies attested devices per tenant verifier
	// (federated runs only).
	TenantAttested map[string]int

	// Telemetry is the run's aggregated telemetry block — per-stage
	// latency histograms, queue-depth and batch-occupancy histograms,
	// verdict and attestation-verb counters, anomalies with their
	// flight-recorder dumps, and the sampled traces themselves. Nil on
	// untraced runs.
	Telemetry *obs.Telemetry
}

// IngestedFrames sums frames processed across shards (drained shards
// included — their pre-drain frames are retired, not forgotten).
func (r *Result) IngestedFrames() uint64 {
	var n uint64
	for _, s := range r.ShardStats {
		n += s.Frames
	}
	return n
}

// ShedFrames sums frames the admission policy dropped across shards.
func (r *Result) ShedFrames() uint64 {
	var n uint64
	for _, s := range r.ShardStats {
		n += s.Shed
	}
	return n
}

// PriorityFrames sums frames admitted through the priority lane.
func (r *Result) PriorityFrames() uint64 {
	var n uint64
	for _, s := range r.ShardStats {
		n += s.Prioritized
	}
	return n
}

// RebalancedFrames sums frames redirected to a new owner after a ring
// change raced their delivery.
func (r *Result) RebalancedFrames() uint64 {
	var n uint64
	for _, s := range r.ShardStats {
		n += s.Rebalanced
	}
	return n
}

// ExpiredFrames sums frames whose retry budget the device-side uplink
// exhausted under a chaos plan — an explicit, per-device-accounted
// outcome (SessionResult.ExpiredEvents / CameraSessionResult
// .ExpiredFrames), never a silent loss.
func (r *Result) ExpiredFrames() int {
	n := 0
	for _, res := range r.DeviceResults {
		if res == nil {
			continue
		}
		if res.Session != nil {
			n += res.Session.ExpiredEvents
		} else if res.Camera != nil {
			n += res.Camera.ExpiredFrames
		}
	}
	return n
}

// LostFrames is the gap between emitted and accounted-for cloud events:
// every emitted frame must be either ingested by an endpoint, explicitly
// shed by the admission policy, or explicitly expired by the device's
// retry layer. Anything else — e.g. a frame dropped by a rebalance or a
// crash — is a loss.
func (r *Result) LostFrames() int {
	return r.ExpectedCloudEvents - int(r.IngestedFrames()) - int(r.ShedFrames()) - r.ExpiredFrames()
}

// Throughput returns items/s over the run phase.
func (r *Result) Throughput() float64 {
	return metrics.Throughput(r.TotalItems, r.RunWall.Seconds())
}

// GroupKeys returns the populated group keys in stable order.
func (r *Result) GroupKeys() []GroupKey {
	keys := make([]GroupKey, 0, len(r.Groups))
	for k := range r.Groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		return keys[i].Mode < keys[j].Mode
	})
	return keys
}

// Run executes one fleet: plan → pretrain shared models (and, for a
// staged rollout, train and publish the model packs) → wire ingest →
// lazily build, attest and process each device → audit.
//
// Device provisioning is lazy: the build phase trains only the shared
// immutable model pack (ASR templates, text and image classifiers), and
// each device pipeline is constructed by the worker that is about to
// feed it its first workload item, then released as soon as its result
// is recorded. A thousand-device fleet therefore holds device pipelines
// for at most DeviceWorkers devices at a time instead of the whole
// population, which keeps the working set (and the GC) fleet-size
// independent.
//
// In Attest mode each worker additionally runs the handshake before the
// device's endpoint joins the ring (provision to the rollout target →
// challenge → TA-signed report → verify), and after the workload the
// rollout convergence step (canary success reporting, then update +
// re-attest once the rollout opens). Default runs are bit-deterministic
// per root seed; rollout runs keep every aggregate invariant (zero lost
// frames, converged versions) but which devices serve as canaries
// depends on worker scheduling.
//
// With Config.Churn the population is elastic: joiners arrive mid-run
// and run the same full per-device flow against the verifier's *current*
// state (a joiner after the rollout opened is provisioned to, and gated
// at, the raised minimum version), and leavers depart early — audit
// folded into the run accounting, endpoint deregistered, attested
// session released. With Config.Rebalance the ingest tier itself churns
// mid-run (weighted shards added, a shard drained) under live traffic.
// Churn and rebalance never change a non-churned device's results.
func Run(cfg Config) (*Result, error) {
	specs, err := Plan(cfg)
	if err != nil {
		return nil, err
	}
	requestedBatch := cfg.Batch
	_ = cfg.fillDefaults() // Plan validated; normalize our copy too
	if requestedBatch <= 0 {
		requestedBatch = cfg.Batch // defaulted, not clamped
	}

	var joiners []core.DeviceSpec
	if cfg.Churn != nil {
		joiners = planJoiners(cfg, specs)
	}
	all := specs
	if len(joiners) > 0 {
		all = append(append(make([]core.DeviceSpec, 0, len(specs)+len(joiners)), specs...), joiners...)
	}

	// Build phase: train the shared model pack once up front. Every
	// lazily constructed device below hits these caches. Rollout packs
	// are trained here too — publishing is a provider-side build step.
	buildStart := time.Now()
	if err := core.Pretrain(all); err != nil {
		return nil, err
	}
	var st *attestState
	if cfg.Attest {
		if st, err = newAttestState(cfg, all); err != nil {
			return nil, err
		}
	}
	buildWall := time.Since(buildStart)

	// Wire the ingest tier: shards and ring exist before any device.
	shards := make([]*cloud.Shard, cfg.Shards)
	for i := range shards {
		shards[i] = cloud.NewShard(fmt.Sprintf("shard-%02d", i), cfg.ShardWorkers, cfg.ShardQueue)
	}
	router, err := cloud.NewRouter(shards, cfg.HashReplicas)
	if err != nil {
		return nil, err
	}
	defer router.Close()
	policy, _ := cloud.PolicyByName(cfg.Policy) // validated in fillDefaults
	router.SetPolicy(policy)
	var tracer *obs.Tracer
	if cfg.Trace != nil {
		tracer = obs.NewTracer(cfg.Trace.SampleEvery)
		// Every shard admission outcome — all devices, not just sampled
		// ones — lands in that shard's flight recorder.
		router.SetFlight(tracer.Flight)
	}
	if st != nil {
		st.tracer = tracer
		router.SetGate(st.gate())
		if st.rollout != nil {
			// Wake any waiter on early return.
			defer func() {
				if !st.rollout.Full() {
					tracer.Anomaly("rollout-abort", "run ended before the rollout opened")
				}
				st.rollout.Abort("run ended before the rollout opened")
			}()
		}
	}

	var sc *schedControl
	if cfg.Sched != nil {
		if sc, err = newSchedControl(cfg, st, shards); err != nil {
			return nil, err
		}
	}

	var fd *faultDriver
	if cfg.Faults != nil {
		if fd, err = newFaultDriver(cfg, router, len(all)); err != nil {
			return nil, err
		}
		// The supervisor heals the crashes the driver fires. Its Close is
		// deferred *after* router.Close so it winds down first (LIFO), and
		// a closed supervisor still restarts inline — a late crash can
		// never strand a queue.
		defer fd.supervise(cfg.ShardWorkers, tracer).Close()
	}

	// Run phase: construct each device on first workload item, register
	// its endpoint on the ring, process, and drop the pipeline. The
	// endpoints stay registered for the post-run audit (leavers excepted:
	// their audit is folded into the run accounting at departure).
	r := &runner{cfg: cfg, st: st, router: router, tracer: tracer, fd: fd, sched: sc, results: make([]*core.DeviceResult, len(all))}
	if cfg.Lifecycle != nil {
		// Lifecycle targets are drawn from the base population only, so
		// the selection (and every non-churned device's behaviour) is
		// independent of whether joiners exist.
		r.lc = newLifecyclePlan(cfg, specs)
	}
	order := make([]int, len(all))
	for i := range order {
		order[i] = i
	}
	if cfg.Churn != nil {
		r.churn = newChurnPlan(cfg, len(specs), len(joiners))
		order = r.churn.arrival
	}
	if cfg.Rebalance != nil {
		r.reb = newRebalancer(cfg, router, len(all))
	}
	runStart := time.Now()
	var runErr error
	var eng *asyncEngine
	if cfg.Async != nil {
		// Event-driven mode: device state is table entries driven by the
		// bounded executor pool; scheduled speakers park between
		// transcription and the shared flush. Rollout is gated off in
		// fillDefaults, so no abort hook is needed here.
		eng = newAsyncEngine(r, all, order)
		runErr = eng.run()
	} else {
		runErr = eachDevice(order, cfg.DeviceWorkers, func(i int) error {
			err := r.runOne(all[i], i)
			if err != nil && st != nil && st.rollout != nil {
				reason := fmt.Sprintf("device failure: %v", err)
				tracer.Anomaly("rollout-abort", reason)
				st.rollout.Abort(reason)
			}
			return err
		})
	}
	if sc != nil {
		// Drain on both paths: an errored run must not strand scheduler
		// workers (or entries another still-healthy device is waiting on).
		sc.scheduler.Drain()
	}
	if runErr != nil {
		return nil, runErr
	}
	runWall := time.Since(runStart)
	if fd != nil {
		// Drain pending supervision work now: a crash fired on the last
		// completions may still be mid-restart, and the aggregate below
		// must snapshot settled shard stats.
		fd.settle()
	}
	if r.reb != nil {
		r.reb.mu.Lock()
		rebErr := r.reb.err
		r.reb.mu.Unlock()
		if rebErr != nil {
			return nil, rebErr
		}
	}

	// The rollout completed: raise the fleet's minimum admitted model
	// version (on every tenant's authority), so from here on a straggler
	// still attested at the base version would be rejected at ingest
	// (attest.ErrStaleModel).
	if st != nil && st.rollout != nil && st.rollout.Full() {
		st.setMinVersion(st.next.Version)
	}

	// Rogue traffic fires before the audit snapshot so the per-shard
	// rejection counters it provokes are visible in the result.
	var rogueAttempts, rogueRejected, unattestedIngested int
	if st != nil {
		rogueAttempts, rogueRejected, unattestedIngested = runRogues(cfg, router, tracer, len(all))
	}
	res := aggregate(cfg, buildWall, runWall, r, router)
	res.RequestedBatch = requestedBatch
	res.EffectiveBatch = cfg.Batch
	if eng != nil {
		res.Async = eng.report()
	}
	if sc != nil {
		res.Sched = sc.report(cfg.Sched)
		tracer.Flushes(res.Sched.Flushes)
	}
	if tracer != nil {
		tel, err := tracer.Summary()
		if err != nil {
			return nil, err
		}
		res.Telemetry = tel
	}
	res.Joined = len(joiners)
	if st != nil {
		res.RogueAttempts, res.RogueRejected, res.UnattestedIngested = rogueAttempts, rogueRejected, unattestedIngested
		fillAttestResult(res, cfg, all, st, router)
	}
	if r.lc != nil {
		r.lc.fill(res)
	}
	return res, nil
}

// runner carries the per-run shared state of the device workers.
type runner struct {
	cfg     Config
	st      *attestState
	router  *cloud.Router
	tracer  *obs.Tracer
	results []*core.DeviceResult
	churn   *churnPlan
	reb     *rebalancer
	lc      *lifecyclePlan
	fd      *faultDriver
	sched   *schedControl
}

// devCtx carries one device's constructed pipeline between the setup,
// run and finish stages of the per-device flow. The synchronous path
// composes the stages on one worker goroutine (runOne); the async engine
// holds the context in its task table across classify parks instead of
// on a stack frame.
type devCtx struct {
	i        int
	spec     core.DeviceSpec
	w        core.DeviceWorkload
	d        *core.Device
	id       string
	tenant   string
	meta     cloud.FrameMeta
	ep       cloud.Provider
	tc       *obs.TraceContext
	leaving  bool
	rotating bool
	rotTok   attest.RotationToken
	sink     *core.RetrySink

	closeOnce sync.Once
}

// close settles the context's delivery-path accounting (retry stats).
// Idempotent; it must fire on every exit path, success or failure, like
// the deferred noteRetry of the pre-split pipeline.
func (dc *devCtx) close(r *runner) {
	dc.closeOnce.Do(func() {
		if dc.sink != nil {
			r.fd.noteRetry(dc.sink.Stats())
		}
	})
}

// runOne is the per-worker pipeline: workload → build → provision to the
// rollout target → (lifecycle) rotation issued → attested handshake →
// register → process → rotation redeemed + re-attested → rollout
// convergence → (lifecycle) revocation + probes → (leavers) clean
// release.
func (r *runner) runOne(spec core.DeviceSpec, i int) error {
	dc, err := r.setupOne(spec, i)
	if err != nil {
		return err
	}
	defer dc.close(r)
	// A shared-classify device is a scheduler producer exactly for the
	// span of its run — the only window it can submit in. Registering the
	// worker goroutine instead would deadlock: a worker parked in
	// converge (AwaitFull) blocks on a canary's completion, the canary
	// blocks in Classify on a flush, and the flush's idle rule would wait
	// for the parked worker to block in Classify — which it never will.
	if dc.spec.SharedClassify {
		r.sched.scheduler.AddProducer()
	}
	res, err := dc.d.Run(dc.w)
	if dc.spec.SharedClassify {
		r.sched.scheduler.ProducerDone()
	}
	if err != nil {
		return fmt.Errorf("device %d: %w", i, err)
	}
	return r.finishOne(dc, res)
}

// setupOne is the front half of the per-device flow: derive the
// workload, build the pipeline, provision/attest, register the endpoint
// and wire the uplink. Everything up to — but not including — processing.
func (r *runner) setupOne(spec core.DeviceSpec, i int) (*devCtx, error) {
	w, err := workloadFor(r.cfg, spec, i)
	if err != nil {
		return nil, fmt.Errorf("device %d workload: %w", i, err)
	}
	leaving := r.churn != nil && r.churn.leaver[i]
	if leaving {
		w = r.churn.truncateWorkload(w)
	}
	// Scheduled mode: secure-filter speakers skip the per-device
	// classifier build and submit classify batches to the shared
	// scheduler instead. This covers base population and joiners alike —
	// both funnel through runOne.
	if r.sched != nil && spec.Kind == core.DeviceSpeaker && spec.Mode == core.ModeSecureFilter {
		spec.SharedClassify = true
	}
	d, err := core.NewDevice(spec)
	if err != nil {
		return nil, fmt.Errorf("device %d: %w", i, err)
	}
	if spec.SharedClassify {
		d.SetClassifyService(r.sched)
	}
	id := spec.DeviceID
	tenant := tenantFor(r.cfg, i)
	// The sampling decision is a pure function of the device's trace
	// seed; sampled-out devices thread a nil context (the zero-cost
	// path) through their whole pipeline.
	tc := r.tracer.Device(id, tenant, core.DeriveSeed(r.cfg.Seed, core.SaltTrace, i))
	d.SetTrace(tc)
	ep := d.CloudEndpoint()
	// The frontend reads tenant and traffic class from the connection,
	// never from sealed content: doorbell events are the fleet's
	// flagged/security traffic and ride the priority lane; speaker
	// telemetry is bulk.
	meta := cloud.FrameMeta{Tenant: tenant, Priority: spec.Kind == core.DeviceDoorbell}
	if r.fd != nil && r.fd.plan.TEEFault(i) {
		// Transient TEE fault at provisioning: the first sealed-storage
		// access times out and is retried, so the device pays the penalty
		// in virtual time before its handshake proceeds. Transient means
		// transient — nothing else about the device's run changes.
		d.Clock().Advance(r.fd.plan.Config().TEEPenalty)
		r.fd.noteTEE()
		r.tracer.Anomaly("tee-transient", fmt.Sprintf("%s: transient TEE error at provisioning, retried", id))
	}
	rotating := r.lc != nil && r.lc.rotate[i] && ep != nil
	var rotTok attest.RotationToken
	if r.st != nil {
		if err := r.st.provision(d, id, tenant); err != nil {
			return nil, fmt.Errorf("device %d provision: %w", i, err)
		}
		if rotating {
			// Rotation is issued *before* the handshake: the verifier
			// already expects the next epoch while the device still signs
			// at the old one, so this device's handshake — and its whole
			// workload — runs inside the grace window, exactly the
			// in-flight case rotation must never break.
			if rotTok, err = r.st.authority(tenant).Rotate(id); err != nil {
				return nil, fmt.Errorf("device %d rotate: %w", i, err)
			}
			r.tracer.Verb(obs.VerbRotate)
		}
		if ep != nil {
			if err := r.st.handshake(d, id, tenant); err != nil {
				return nil, fmt.Errorf("device %d: %w", i, err)
			}
		}
	}
	dc := &devCtx{
		i: i, spec: spec, w: w, d: d, id: id, tenant: tenant, meta: meta,
		ep: ep, tc: tc, leaving: leaving, rotating: rotating, rotTok: rotTok,
	}
	if ep != nil {
		r.router.Register(id, ep)
		up := &cloud.Uplink{DeviceID: id, Router: r.router, Meta: meta}
		if r.fd == nil {
			d.SetUplink(up)
		} else {
			// Chaos path: the plan's injector sits between the uplink and
			// the router (untouched devices get the router back unchanged,
			// so their delivery path shares no state with the chaos), and
			// the retry layer wraps the whole delivery so transient faults
			// back off in virtual cycles on this device's own clock.
			up.Ingest = r.fd.plan.Injector(i, r.router, d.Clock())
			rcfg := r.fd.spec.Retry
			rcfg.Seed = core.DeriveSeed(r.fd.spec.Seed, core.SaltFault, i)
			sink := core.NewRetrySink(up, d.Clock(), rcfg)
			dc.sink = sink
			d.SetUplink(sink)
		}
	}
	return dc, nil
}

// finishOne is the back half of the per-device flow, run after the
// workload: rotation redeemed + re-attested, rollout convergence,
// revocation probes, leaver release, result recording.
func (r *runner) finishOne(dc *devCtx, res *core.DeviceResult) error {
	defer dc.close(r)
	i, d, id, tenant, leaving := dc.i, dc.d, dc.id, dc.tenant, dc.leaving
	if r.st != nil {
		if dc.rotating && !leaving {
			// Redeem inside the TEE, then re-attest at the new epoch —
			// closing the grace window — before any rollout convergence
			// mints manifests for this device at the rotated epoch.
			if _, err := d.RotateKey(dc.rotTok); err != nil {
				return fmt.Errorf("device %d rotate redeem: %w", i, err)
			}
			if err := r.st.handshake(d, id, tenant); err != nil {
				return fmt.Errorf("device %d re-attest: %w", i, err)
			}
			r.lc.noteRotated()
		}
		if err := r.st.converge(d, id, tenant, leaving); err != nil {
			return fmt.Errorf("device %d converge: %w", i, err)
		}
	}
	if r.lc != nil && r.lc.revoke[i] && dc.ep != nil && !leaving {
		// The compromised-device drill: revoke the completed device while
		// the rest of the fleet is still processing, then prove its
		// identity is cut off at the frontend within one frame.
		r.lc.probeRevoked(r, id, tenant, dc.meta, dc.tc)
	}
	if leaving {
		// Clean departure: account for what the provider saw from this
		// device, hand the ring back its slot, release the attested
		// session so the identity cannot keep ingesting.
		if dc.ep != nil {
			r.churn.depart(dc.ep.Audit())
			r.router.Deregister(id)
		}
		if r.st != nil {
			r.st.authority(tenant).Release(id)
		}
		r.churn.noteLeft()
	}
	r.results[i] = res
	if r.reb != nil {
		r.reb.noteDone()
	}
	if r.fd != nil {
		r.fd.noteDone()
	}
	return nil
}

// eachDevice runs fn over the device indices in arrival order on a
// bounded worker pool, returning the first error.
func eachDevice(order []int, workers int, fn func(i int) error) error {
	if workers > len(order) {
		workers = len(order)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, i := range order {
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// workloadFor derives device i's labelled workload from the root seed.
func workloadFor(cfg Config, spec core.DeviceSpec, i int) (core.DeviceWorkload, error) {
	wseed := core.DeriveSeed(cfg.Seed, core.SaltWorkload, i)
	if spec.Kind == core.DeviceSpeaker {
		utts, err := sensitive.Generate(sensitive.GenConfig{
			N: cfg.Utterances, SensitiveFraction: cfg.SensitiveFraction, Seed: wseed,
		})
		if err != nil {
			return core.DeviceWorkload{}, err
		}
		return core.DeviceWorkload{Utterances: utts}, nil
	}
	rng := core.NewRNG(wseed, wseed^core.SaltWorkload)
	scenes := make([]peripheral.Scene, cfg.Frames)
	for j := range scenes {
		if rng.Float64() < cfg.SensitiveFraction {
			scenes[j] = peripheral.ScenePerson
		} else {
			scenes[j] = peripheral.SceneEmpty
		}
	}
	return core.DeviceWorkload{Scenes: scenes}, nil
}

func aggregate(cfg Config, buildWall, runWall time.Duration, r *runner, router *cloud.Router) *Result {
	out := &Result{
		Config:        cfg,
		BuildWall:     buildWall,
		RunWall:       runWall,
		Groups:        make(map[GroupKey]*GroupStats),
		Latency:       metrics.NewRecorder(),
		DeviceResults: r.results,
		PolicyName:    router.Policy().Name(),
	}
	for _, res := range r.results {
		key := GroupKey{Kind: res.Spec.Kind, Mode: res.Spec.Mode}
		g := out.Groups[key]
		if g == nil {
			g = &GroupStats{Latency: metrics.NewRecorder()}
			out.Groups[key] = g
		}
		g.Devices++
		g.CloudEvents += res.CloudEvents()
		out.ExpectedCloudEvents += res.CloudEvents()
		g.Latency.Merge(res.Latency())
		out.Latency.Merge(res.Latency())
		items := 0
		if res.Session != nil {
			items = len(res.Session.Utterances)
			g.SensitiveTokens += res.Session.CloudAudit.SensitiveTokens
		} else {
			items = res.Camera.Frames
			g.PersonFrames += res.Camera.ForwardedPersons
		}
		g.Items += items
		out.TotalItems += items
	}
	out.ShardStats = router.Stats()
	out.Audit = router.Audit()
	if r.churn != nil {
		// Leavers deregistered their endpoints; what they delivered
		// before departing was captured then and is folded in here.
		r.churn.mu.Lock()
		out.Audit = out.Audit.Merge(r.churn.departed)
		out.Left = r.churn.left
		r.churn.mu.Unlock()
		for i := range r.churn.leaver {
			out.Leavers = append(out.Leavers, i)
		}
		sort.Ints(out.Leavers)
	}
	if r.reb != nil {
		out.Rebalance = r.reb.report()
	}
	if r.fd != nil {
		out.Faults = r.fd.report(out)
	}
	return out
}
