package fleet

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tz"
)

// TestSchedBatchEquivalenceProperty is the tentpole's correctness pin:
// across 8 randomized configurations (population size, scheduler batch
// size, flush deadline, canary fraction, churn), a scheduled run's
// per-device audit fingerprints are bit-identical to the unbatched
// per-device run of the same seed. Cross-device batching may change
// when classification happens and how big the serving forward pass is —
// never what any device's transcripts, verdicts or audit counters say.
func TestSchedBatchEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		schedBatch := 2 + rng.Intn(core.MaxBatch-1) // 2..MaxBatch
		cfg := Config{
			Devices:    12 + rng.Intn(17), // 12..28
			Shards:     2 + rng.Intn(3),
			Utterances: 2,
			Frames:     2,
			Seed:       uint64(1000 + trial),
			Batch:      1 + rng.Intn(schedBatch), // device queue must fit one flush
		}
		if rng.Intn(2) == 1 {
			cfg.Rollout = &RolloutSpec{CanaryFraction: 0.1 + 0.4*rng.Float64()}
		}
		if rng.Intn(2) == 1 {
			cfg.Churn = &ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25}
		}
		maxAge := tz.Cycles(10_000 + rng.Intn(2_000_000))
		t.Logf("trial %d: devices=%d shards=%d batch=%d sched=%d maxAge=%d rollout=%v churn=%v",
			trial, cfg.Devices, cfg.Shards, cfg.Batch, schedBatch, maxAge,
			cfg.Rollout != nil, cfg.Churn != nil)

		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d unbatched: %v", trial, err)
		}
		scfg := cfg
		scfg.Sched = &SchedSpec{Batch: schedBatch, MaxAge: maxAge}
		scheduled, err := Run(scfg)
		if err != nil {
			t.Fatalf("trial %d scheduled: %v", trial, err)
		}

		if scheduled.LostFrames() != 0 {
			t.Fatalf("trial %d: scheduled run lost %d frames", trial, scheduled.LostFrames())
		}
		if len(scheduled.DeviceResults) != len(plain.DeviceResults) {
			t.Fatalf("trial %d: population diverged: %d vs %d devices",
				trial, len(scheduled.DeviceResults), len(plain.DeviceResults))
		}
		for i := range plain.DeviceResults {
			if got, want := fingerprint(scheduled.DeviceResults[i]), fingerprint(plain.DeviceResults[i]); got != want {
				t.Fatalf("trial %d device %d diverged under scheduling:\n sched: %s\n plain: %s",
					trial, i, got, want)
			}
		}
		rep := scheduled.Sched
		if rep == nil {
			t.Fatalf("trial %d: scheduled run has no scheduler report", trial)
		}
		if rep.Items == 0 || rep.Batches == 0 {
			t.Fatalf("trial %d: scheduler classified nothing: %+v", trial, rep)
		}
		if rep.MixedVersionFlushes != 0 {
			t.Fatalf("trial %d: %d flushes mixed model versions", trial, rep.MixedVersionFlushes)
		}
		if rep.MaxOccupancy > schedBatch {
			t.Fatalf("trial %d: flush of %d items exceeds scheduler batch %d",
				trial, rep.MaxOccupancy, schedBatch)
		}
		var flushed uint64
		for _, n := range rep.Flushes {
			flushed += n
		}
		if flushed != rep.Batches {
			t.Fatalf("trial %d: flush reasons account for %d batches, ran %d", trial, flushed, rep.Batches)
		}
		var byVersion uint64
		for _, n := range rep.ItemsByVersion {
			byVersion += n
		}
		if byVersion != rep.Items {
			t.Fatalf("trial %d: per-version items %d != total %d", trial, byVersion, rep.Items)
		}
	}
}

// TestSchedulerUnderChurnRace runs the scheduled fleet under join/leave
// churn while a staged rollout raises the fleet's minimum admitted model
// version mid-run — under -race this doubles as the scheduler's data-race
// suite. Joiners provisioned at the rollout target must land in the
// target version's queue (never batched with the stable cohort), and the
// audits still match the unbatched run exactly.
func TestSchedulerUnderChurnRace(t *testing.T) {
	cfg := Config{
		Devices:          24,
		DoorbellFraction: -1,
		Mix:              MixSpec{core.ModeSecureFilter: 1}, // all secure-filter speakers
		Shards:           3,
		Utterances:       2,
		Seed:             99,
		// More concurrent device pipelines than canary slots: the first
		// wave provisions together, so the stable cohort is guaranteed to
		// classify at the base version while canaries run the target —
		// both per-version queues see traffic in the same run.
		DeviceWorkers: 16,
		Rollout:       &RolloutSpec{CanaryFraction: 0.25},
		Churn:         &ChurnSpec{JoinFraction: 0.5, LeaveFraction: 0.2},
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Churn = &ChurnSpec{JoinFraction: 0.5, LeaveFraction: 0.2}
	scfg.Sched = &SchedSpec{Batch: 4, MaxAge: 200_000}
	scheduled, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if scheduled.Joined == 0 || scheduled.Left == 0 {
		t.Fatalf("churn did not churn: joined %d, left %d", scheduled.Joined, scheduled.Left)
	}
	if scheduled.Rollout == nil || !scheduled.Rollout.Converged {
		t.Fatalf("rollout did not converge under scheduling: %+v", scheduled.Rollout)
	}
	if scheduled.Rollout.MinVersion != scheduled.Rollout.ToVersion {
		t.Fatalf("ingest floor %d, want %d", scheduled.Rollout.MinVersion, scheduled.Rollout.ToVersion)
	}
	if scheduled.LostFrames() != 0 {
		t.Fatalf("lost %d frames", scheduled.LostFrames())
	}
	for i := range plain.DeviceResults {
		if got, want := fingerprint(scheduled.DeviceResults[i]), fingerprint(plain.DeviceResults[i]); got != want {
			t.Fatalf("device %d diverged under scheduling:\n sched: %s\n plain: %s", i, got, want)
		}
	}
	rep := scheduled.Sched
	if rep == nil {
		t.Fatal("no scheduler report")
	}
	if rep.MixedVersionFlushes != 0 {
		t.Fatalf("%d flushes mixed model versions", rep.MixedVersionFlushes)
	}
	// Which devices classify at the base version is admission-order
	// (wall-clock) dependent — on a single-CPU host every canary can
	// finish before the stable cohort provisions, so both queues carrying
	// traffic is not guaranteed here (the per-version separation itself
	// is pinned deterministically by the sched package's unit suite).
	// What IS deterministic: every queue is a provisioned pack version,
	// and the rollout-target queue carried the canaries and every joiner
	// provisioned after the rollout filled.
	base, to := scheduled.Rollout.BaseVersion, scheduled.Rollout.ToVersion
	for v, n := range rep.ItemsByVersion {
		if v != base && v != to {
			t.Fatalf("items classified at unprovisioned version %d: %v", v, rep.ItemsByVersion)
		}
		if n == 0 {
			t.Fatalf("version %d queue registered no items: %v", v, rep.ItemsByVersion)
		}
	}
	if rep.ItemsByVersion[to] == 0 {
		t.Fatalf("rollout-target queue saw no traffic (joiners misrouted?): %v", rep.ItemsByVersion)
	}
	t.Logf("items by version: %v, flushes: %v", rep.ItemsByVersion, rep.Flushes)
}

// TestSchedLoneDeviceCompletes: a single secure-filter speaker on an
// otherwise empty scheduler can never fill a batch — the run completing
// at all (rather than deadlocking) proves the deadline/idle machinery
// flushes a starved queue, and its audit still matches the unbatched run.
func TestSchedLoneDeviceCompletes(t *testing.T) {
	cfg := Config{
		Devices:          2,
		DoorbellFraction: -1,
		Mix:              MixSpec{core.ModeSecureFilter: 1},
		Utterances:       2,
		Seed:             7,
		DeviceWorkers:    8, // more workers than devices: idle workers must not stall the flush
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Sched = &SchedSpec{Batch: core.MaxBatch, MaxAge: 50_000}
	scheduled, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.DeviceResults {
		if got, want := fingerprint(scheduled.DeviceResults[i]), fingerprint(plain.DeviceResults[i]); got != want {
			t.Fatalf("device %d diverged:\n sched: %s\n plain: %s", i, got, want)
		}
	}
	rep := scheduled.Sched
	if rep == nil || rep.Items == 0 {
		t.Fatalf("scheduler classified nothing: %+v", rep)
	}
	if rep.Flushes[sched.ReasonFull] == rep.Batches {
		t.Fatalf("every flush was batch-full — starvation path untested: %v", rep.Flushes)
	}
}

// TestBatchClampSurfaced is the PR's bugfix regression test: the fleet
// used to silently cap Config.Batch at core.MaxBatch. The clamp still
// applies (the TA cannot run a bigger forward pass) but is now surfaced
// in Result.RequestedBatch vs Result.EffectiveBatch — and a scheduler
// config that asks for more than the TA can serve fails fast instead.
func TestBatchClampSurfaced(t *testing.T) {
	res, err := Run(Config{
		Devices:          4,
		DoorbellFraction: -1,
		Mix:              MixSpec{core.ModeSecureFilter: 1},
		Utterances:       1,
		Seed:             3,
		Batch:            32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestedBatch != 32 {
		t.Fatalf("requested batch %d, want the 32 the config asked for", res.RequestedBatch)
	}
	if res.EffectiveBatch != core.MaxBatch {
		t.Fatalf("effective batch %d, want the core.MaxBatch clamp (%d)", res.EffectiveBatch, core.MaxBatch)
	}

	// A defaulted config surfaces request == effective.
	res, err = Run(Config{Devices: 4, Utterances: 1, Frames: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestedBatch != res.EffectiveBatch {
		t.Fatalf("defaulted run surfaced a phantom clamp: requested %d effective %d",
			res.RequestedBatch, res.EffectiveBatch)
	}

	// The scheduler refuses up front: a shared flush larger than
	// core.MaxBatch can never run, so it is ErrBadConfig, not a clamp.
	_, err = Run(Config{
		Devices:    4,
		Utterances: 1,
		Seed:       3,
		Sched:      &SchedSpec{Batch: 32},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("oversized scheduler batch: got %v, want ErrBadConfig", err)
	}

	// A device TA queue bigger than the shared flush could never drain
	// through it — also fail-fast.
	_, err = Run(Config{
		Devices:    4,
		Utterances: 1,
		Seed:       3,
		Batch:      8,
		Sched:      &SchedSpec{Batch: 4},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("device batch > scheduler batch: got %v, want ErrBadConfig", err)
	}
}
