package fleet

import (
	"errors"
	"testing"
)

func TestFaultSpecValidation(t *testing.T) {
	for name, spec := range map[string]*FaultSpec{
		"negative crashes": {Crashes: -1},
		"slow shard oob":   {SlowShard: 9},
		"rates sum over 1": {DropRate: 0.7, DuplicateRate: 0.7},
	} {
		if _, err := Run(Config{Devices: 4, Shards: 2, Faults: spec}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: want ErrBadConfig, got %v", name, err)
		}
	}
}

// TestChaosFleetChurn drives the chaos plan through an elastic run —
// joiners and leavers churn while shards crash and the uplink drops,
// duplicates and expires frames — and checks the conservation identity
// and the fault report's internal consistency.
func TestChaosFleetChurn(t *testing.T) {
	res, err := Run(Config{
		Devices:    24,
		Shards:     3,
		Utterances: 2,
		Frames:     2,
		Seed:       7,
		Churn:      &ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25},
		Faults: &FaultSpec{
			TouchFraction: 0.5,
			DropRate:      0.25,
			DuplicateRate: 0.15,
			DelayRate:     0.1,
			ExpireRate:    0.1,
			Crashes:       1,
			SlowShard:     1,
			TEEFraction:   0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil {
		t.Fatal("chaos run returned no fault report")
	}
	rep := res.Faults
	if got := res.LostFrames(); got != 0 {
		t.Fatalf("lost %d frames under chaos+churn (expected == ingested + shed + expired broken)", got)
	}
	if rep.Expired != res.ExpiredFrames() {
		t.Fatalf("report expired %d, device results say %d", rep.Expired, res.ExpiredFrames())
	}
	if rep.Crashes != 1 || rep.Restarts != 1 {
		t.Fatalf("crashes/restarts %d/%d, want 1/1", rep.Crashes, rep.Restarts)
	}
	if rep.Recovered != uint64(rep.QueuedAtCrash) {
		t.Fatalf("recovered %d, stranded at crash %d", rep.Recovered, rep.QueuedAtCrash)
	}
	if rep.Injected == 0 || rep.Touched == 0 {
		t.Fatalf("chaos plan was inert: %+v", rep)
	}
	if rep.DuplicatesDropped > rep.Duplicates {
		t.Fatalf("dedup dropped %d of %d injected duplicates", rep.DuplicatesDropped, rep.Duplicates)
	}
	if rep.TEEFaults == 0 {
		t.Fatalf("TEE fraction 0.5 hit no device: %+v", rep)
	}
	if len(rep.TouchedDevices) != rep.Touched {
		t.Fatalf("touched list %d entries, report says %d", len(rep.TouchedDevices), rep.Touched)
	}
}
