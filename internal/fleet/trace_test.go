package fleet

// Telemetry properties the tentpole promises: the exported trace dump is
// a pure function of seed and config (bit-reproducible across runs), the
// dump carries metadata only (the strict grammar parses every line and
// no transcript token leaks into it), tracing at the default sampling
// rate does not perturb a single audit counter, and the sampler's
// decisions partition the population exactly.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sensitive"
)

// tracedLifecycleConfig is a fully-featured deterministic run: attested
// handshakes, key rotation, revocation probes, rogue clients — but the
// fixed (never-shed) admission policy and no rollout, so every span is a
// pure function of the root seed.
func tracedLifecycleConfig(sampleEvery int) Config {
	return Config{
		Devices:    48,
		Shards:     4,
		Utterances: 2,
		Frames:     2,
		Seed:       7,
		Lifecycle:  &LifecycleSpec{RotateFraction: 0.25, RevokeFraction: 0.125},
		Rogues:     3,
		Trace:      &TraceSpec{SampleEvery: sampleEvery},
	}
}

func dumpOf(t *testing.T, res *Result) []byte {
	t.Helper()
	if res.Telemetry == nil {
		t.Fatal("traced run returned no telemetry block")
	}
	var buf bytes.Buffer
	if err := res.Telemetry.WriteDump(&buf); err != nil {
		t.Fatalf("trace dump: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDumpDeterministic: two runs of the same seed and config
// produce byte-identical trace dumps, lifecycle drills and rogues
// included.
func TestTraceDumpDeterministic(t *testing.T) {
	first, err := Run(tracedLifecycleConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(tracedLifecycleConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a, b := dumpOf(t, first), dumpOf(t, second)
	if !bytes.Equal(a, b) {
		t.Fatalf("trace dumps differ across identical runs (%d vs %d bytes)", len(a), len(b))
	}
	if first.Telemetry.SpanCount() == 0 {
		t.Fatal("no spans at 1-in-1 sampling")
	}
}

// TestTraceDumpMetadataOnly is the leak guard: an all-sensitive workload
// is traced at 1-in-1 sampling and the dump must still parse under the
// strict span grammar, with not one private lexicon token anywhere in
// it — a span has no field that could carry payload, and this pins it.
func TestTraceDumpMetadataOnly(t *testing.T) {
	cfg := tracedLifecycleConfig(1)
	cfg.SensitiveFraction = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dump := dumpOf(t, res)
	if _, err := obs.ParseDump(bytes.NewReader(dump)); err != nil {
		t.Fatalf("dump violates the strict grammar: %v", err)
	}
	words := strings.FieldsFunc(string(dump), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z')
	})
	for _, w := range words {
		if sensitive.IsSensitiveWord(w) {
			t.Fatalf("private token %q leaked into the trace dump", w)
		}
	}
	if res.Audit.SensitiveTokens == 0 {
		t.Fatal("workload carried no sensitive tokens; leak check is vacuous")
	}
}

// TestTracedRunLeavesAuditUnchanged: tracing at the default sampling
// rate is observability, not behaviour — cloud events, sensitive tokens
// and frame conservation are bit-identical to the untraced run.
func TestTracedRunLeavesAuditUnchanged(t *testing.T) {
	plain := tracedLifecycleConfig(0)
	plain.Trace = nil
	untraced, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(tracedLifecycleConfig(0)) // default 1-in-64
	if err != nil {
		t.Fatal(err)
	}
	if traced.Telemetry == nil || traced.Telemetry.SampleEvery != 64 {
		t.Fatalf("default sampling not applied: %+v", traced.Telemetry)
	}
	if got, want := traced.Audit, untraced.Audit; got.Events != want.Events ||
		got.TokensSeen != want.TokensSeen || got.SensitiveTokens != want.SensitiveTokens ||
		got.AudioBytes != want.AudioBytes {
		t.Fatalf("tracing changed the audit: %+v vs %+v", got, want)
	}
	if got, want := traced.IngestedFrames(), untraced.IngestedFrames(); got != want {
		t.Fatalf("tracing changed ingested frames: %d vs %d", got, want)
	}
	if got, want := traced.LostFrames(), untraced.LostFrames(); got != 0 || want != 0 {
		t.Fatalf("lost frames: traced %d, untraced %d", got, want)
	}
	if got, want := traced.RevokeRejected, untraced.RevokeRejected; got != want {
		t.Fatalf("tracing changed probe rejections: %d vs %d", got, want)
	}
}

// TestTraceSamplingPartitionsPopulation: every client is either sampled
// (its trace is exported) or counted unsampled — nothing is dropped on
// the floor, at any rate.
func TestTraceSamplingPartitionsPopulation(t *testing.T) {
	for _, every := range []int{1, 4, 1 << 20} {
		cfg := tracedLifecycleConfig(every)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tel := res.Telemetry
		clients := cfg.Devices + cfg.Rogues
		if got := tel.SampledDevices() + tel.UnsampledDevices; got != clients {
			t.Fatalf("sample-every=%d: %d sampled + %d unsampled != %d clients",
				every, tel.SampledDevices(), tel.UnsampledDevices, clients)
		}
		if every == 1 && tel.SampledDevices() != clients {
			t.Fatalf("1-in-1 sampling skipped clients: %d of %d", tel.SampledDevices(), clients)
		}
	}
}
