package fleet

import (
	"testing"

	"repro/internal/core"
)

// TestFleetShardedIngest is the subsystem's load test: a mixed population
// across ≥4 shards with ≥64 devices, concurrent end to end (run it with
// -race). A correct ingest tier loses no frames and its aggregated audit
// equals the sum of per-device expectations.
func TestFleetShardedIngest(t *testing.T) {
	cfg := Config{
		Devices:    64,
		Shards:     4,
		Utterances: 2,
		Frames:     3,
		Seed:       7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames (expected %d, ingested %d)",
			res.LostFrames(), res.ExpectedCloudEvents, res.IngestedFrames())
	}
	for _, s := range res.ShardStats {
		if s.Errors != 0 {
			t.Fatalf("shard %s rejected %d frames", s.Name, s.Errors)
		}
	}
	if res.Audit.Events != res.ExpectedCloudEvents {
		t.Fatalf("provider audit saw %d events, devices emitted %d",
			res.Audit.Events, res.ExpectedCloudEvents)
	}

	// Aggregated leakage must equal the sum of per-device expectations.
	wantSensitive := 0
	for _, g := range res.Groups {
		wantSensitive += g.SensitiveTokens
	}
	if res.Audit.SensitiveTokens != wantSensitive {
		t.Fatalf("aggregate sensitive tokens %d != per-device sum %d",
			res.Audit.SensitiveTokens, wantSensitive)
	}

	// Devices landed on more than one shard, and every uplinking device
	// is registered somewhere.
	usedShards, registered := 0, 0
	for _, s := range res.ShardStats {
		if s.Devices > 0 {
			usedShards++
		}
		registered += s.Devices
	}
	if usedShards < 2 {
		t.Fatalf("population of 64 landed on %d shard(s)", usedShards)
	}
	total := 0
	for _, g := range res.Groups {
		total += g.Devices
	}
	if total != cfg.Devices {
		t.Fatalf("grouped %d devices, want %d", total, cfg.Devices)
	}
	if registered == 0 || registered > cfg.Devices {
		t.Fatalf("implausible registration count %d", registered)
	}
	if res.TotalItems == 0 || res.Latency.Count() != res.TotalItems {
		t.Fatalf("latency samples %d != items %d", res.Latency.Count(), res.TotalItems)
	}
}

// TestFleetDeterminism: same root seed → identical leakage and outcome
// counts, regardless of scheduling.
func TestFleetDeterminism(t *testing.T) {
	cfg := Config{
		Devices:    12,
		Shards:     3,
		Utterances: 2,
		Frames:     2,
		Seed:       11,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Audit.Events != b.Audit.Events ||
		a.Audit.TokensSeen != b.Audit.TokensSeen ||
		a.Audit.SensitiveTokens != b.Audit.SensitiveTokens ||
		a.Audit.AudioBytes != b.Audit.AudioBytes {
		t.Fatalf("audits differ across identical seeds:\n%+v\n%+v", a.Audit, b.Audit)
	}
	if a.TotalItems != b.TotalItems || a.ExpectedCloudEvents != b.ExpectedCloudEvents {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			a.TotalItems, a.ExpectedCloudEvents, b.TotalItems, b.ExpectedCloudEvents)
	}
	for _, k := range a.GroupKeys() {
		ga, gb := a.Groups[k], b.Groups[k]
		if gb == nil {
			t.Fatalf("group %v missing on rerun", k)
		}
		if ga.SensitiveTokens != gb.SensitiveTokens || ga.CloudEvents != gb.CloudEvents ||
			ga.Items != gb.Items || ga.PersonFrames != gb.PersonFrames {
			t.Fatalf("group %v differs: %+v vs %+v", k, ga, gb)
		}
		// Virtual latency is part of the deterministic surface.
		if ga.Latency.Percentile(50) != gb.Latency.Percentile(50) ||
			ga.Latency.Percentile(99) != gb.Latency.Percentile(99) {
			t.Fatalf("group %v latency percentiles differ", k)
		}
	}
}

// TestFleetFilterReducesLeakage: the fleet-level privacy claim — the
// secure-filter slice leaks less than the baseline slice under the same
// workload distribution.
func TestFleetFilterReducesLeakage(t *testing.T) {
	res, err := Run(Config{Devices: 24, Shards: 4, Utterances: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := res.Groups[GroupKey{Kind: core.DeviceSpeaker, Mode: core.ModeBaseline}]
	filt := res.Groups[GroupKey{Kind: core.DeviceSpeaker, Mode: core.ModeSecureFilter}]
	if base == nil || filt == nil {
		t.Fatalf("mix missing modes: %v", res.GroupKeys())
	}
	perBase := float64(base.SensitiveTokens) / float64(base.Devices)
	perFilt := float64(filt.SensitiveTokens) / float64(filt.Devices)
	if perFilt >= perBase {
		t.Fatalf("filter did not reduce leakage: filtered %.2f vs baseline %.2f tokens/device",
			perFilt, perBase)
	}
}

func TestPlanMixesKindsAndModes(t *testing.T) {
	specs, err := Plan(Config{Devices: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[core.DeviceKind]int{}
	modes := map[core.Mode]int{}
	seeds := map[uint64]bool{}
	for _, s := range specs {
		kinds[s.Kind]++
		modes[s.Mode]++
		if s.Seed == 0 {
			t.Fatal("derived zero device seed")
		}
		seeds[s.Seed] = true
		if s.ModelSeed != 5 {
			t.Fatalf("device ModelSeed %d, want shared root 5", s.ModelSeed)
		}
	}
	if kinds[core.DeviceSpeaker] == 0 || kinds[core.DeviceDoorbell] == 0 {
		t.Fatalf("population not mixed: %v", kinds)
	}
	for _, m := range []core.Mode{core.ModeBaseline, core.ModeSecureNoFilter, core.ModeSecureFilter} {
		if modes[m] == 0 {
			t.Fatalf("mode %v missing from plan: %v", m, modes)
		}
	}
	if len(seeds) != len(specs) {
		t.Fatalf("device seeds collide: %d unique of %d", len(seeds), len(specs))
	}

	// A negative fraction is the explicit speakers-only population.
	only, err := Plan(Config{Devices: 8, DoorbellFraction: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range only {
		if s.Kind != core.DeviceSpeaker {
			t.Fatalf("speakers-only plan produced a %v", s.Kind)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Devices: 4, DoorbellFraction: 1.5}); err == nil {
		t.Fatal("accepted doorbell fraction > 1")
	}
	if _, err := Run(Config{Devices: 4, Mix: LegacyMix([3]int{-1, 1, 1})}); err == nil {
		t.Fatal("accepted negative mix weight")
	}
}
