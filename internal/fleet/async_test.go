package fleet

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tz"
)

// TestAsyncPipelineEquivalence is the event-driven tentpole's correctness
// pin: across 8 randomized configurations (population size, executor pool
// size, device batch, scheduler batch and deadline, churn, key rotation),
// the async engine's per-device audit fingerprints are bit-identical to
// the goroutine-per-device run of the same seed, with zero lost frames.
// The engine may move where waiting happens — never what any device's
// transcripts, verdicts or audit counters say.
func TestAsyncPipelineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		schedOn := trial%4 != 3 // 6 of 8 trials exercise the shared scheduler
		schedBatch := 2 + rng.Intn(core.MaxBatch-1)
		cfg := Config{
			Devices:    12 + rng.Intn(17), // 12..28
			Shards:     2 + rng.Intn(3),
			Utterances: 2,
			Frames:     2,
			Seed:       uint64(2000 + trial),
		}
		if schedOn {
			cfg.Batch = 1 + rng.Intn(schedBatch) // device queue must fit one flush
		} else {
			cfg.Batch = 1 + rng.Intn(core.MaxBatch)
		}
		if rng.Intn(2) == 1 {
			cfg.Churn = &ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25}
		}
		if rng.Intn(2) == 1 {
			cfg.Lifecycle = &LifecycleSpec{RotateFraction: 0.25}
		}
		maxAge := tz.Cycles(10_000 + rng.Intn(2_000_000))
		if schedOn {
			cfg.Sched = &SchedSpec{Batch: schedBatch, MaxAge: maxAge}
		}
		executors := 1 + rng.Intn(8)
		t.Logf("trial %d: devices=%d shards=%d batch=%d sched=%v/%d maxAge=%d churn=%v rotate=%v executors=%d",
			trial, cfg.Devices, cfg.Shards, cfg.Batch, schedOn, schedBatch, maxAge,
			cfg.Churn != nil, cfg.Lifecycle != nil, executors)

		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d sync: %v", trial, err)
		}
		acfg := cfg
		acfg.Async = &AsyncSpec{Executors: executors}
		async, err := Run(acfg)
		if err != nil {
			t.Fatalf("trial %d async: %v", trial, err)
		}

		if async.LostFrames() != 0 {
			t.Fatalf("trial %d: async run lost %d frames", trial, async.LostFrames())
		}
		if len(async.DeviceResults) != len(plain.DeviceResults) {
			t.Fatalf("trial %d: population diverged: %d vs %d devices",
				trial, len(async.DeviceResults), len(plain.DeviceResults))
		}
		for i := range plain.DeviceResults {
			if got, want := fingerprint(async.DeviceResults[i]), fingerprint(plain.DeviceResults[i]); got != want {
				t.Fatalf("trial %d device %d diverged under the async engine:\n async: %s\n  sync: %s",
					trial, i, got, want)
			}
		}
		if cfg.Lifecycle != nil && async.Rotated != plain.Rotated {
			t.Fatalf("trial %d: rotation diverged: async %d, sync %d", trial, async.Rotated, plain.Rotated)
		}
		arep := async.Async
		if arep == nil {
			t.Fatalf("trial %d: async run has no engine report", trial)
		}
		if arep.Steps < uint64(len(async.DeviceResults)) {
			t.Fatalf("trial %d: %d executor steps for %d devices (every device is at least one step)",
				trial, arep.Steps, len(async.DeviceResults))
		}
		if arep.PeakLive < 1 || arep.PeakLive > len(async.DeviceResults) {
			t.Fatalf("trial %d: peak live pipelines %d outside [1, %d]",
				trial, arep.PeakLive, len(async.DeviceResults))
		}
		if !schedOn {
			if arep.Parks != 0 {
				t.Fatalf("trial %d: %d groups parked with no scheduler wired", trial, arep.Parks)
			}
			continue
		}
		if arep.Parks == 0 {
			t.Fatalf("trial %d: scheduled async run parked no classify groups", trial)
		}
		rep := async.Sched
		if rep == nil {
			t.Fatalf("trial %d: scheduled async run has no scheduler report", trial)
		}
		if rep.Items == 0 || rep.Batches == 0 {
			t.Fatalf("trial %d: scheduler classified nothing: %+v", trial, rep)
		}
		if rep.MixedVersionFlushes != 0 {
			t.Fatalf("trial %d: %d flushes mixed model versions", trial, rep.MixedVersionFlushes)
		}
		if rep.MaxOccupancy > schedBatch {
			t.Fatalf("trial %d: flush of %d items exceeds scheduler batch %d",
				trial, rep.MaxOccupancy, schedBatch)
		}
		var flushed uint64
		for _, n := range rep.Flushes {
			flushed += n
		}
		if flushed != rep.Batches {
			t.Fatalf("trial %d: flush reasons account for %d batches, ran %d", trial, flushed, rep.Batches)
		}
	}
}

// TestAsyncPipelineUnderChaosRace is the engine's -race suite: the
// event-driven pipeline under a chaos plan (uplink drops, duplicates,
// delays, expiry blackholes, a shard crash) with churn and a mid-run
// ingest-tier rebalance, all flowing through the shared scheduler. The
// conservation identity must hold exactly — every emitted frame is
// ingested, shed, or expired, never silently lost — and the fault and
// rebalance reports must stay internally consistent.
func TestAsyncPipelineUnderChaosRace(t *testing.T) {
	res, err := Run(Config{
		Devices:    48,
		Shards:     3,
		Utterances: 2,
		Frames:     2,
		Seed:       11,
		Churn:      &ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25},
		Sched:      &SchedSpec{Batch: 4, MaxAge: 200_000},
		Async:      &AsyncSpec{Executors: 8},
		// Drain a shard the crash schedule does not target (crash targets
		// rotate from shard-00; a drained target would skip the crash).
		Rebalance: &RebalanceSpec{AtFraction: 0.5, AddShards: 1, DrainShard: 2},
		Faults: &FaultSpec{
			TouchFraction: 0.5,
			DropRate:      0.25,
			DuplicateRate: 0.15,
			DelayRate:     0.1,
			ExpireRate:    0.1,
			Crashes:       1,
			TEEFraction:   0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LostFrames(); got != 0 {
		t.Fatalf("lost %d frames under async+chaos+rebalance (expected == ingested + shed + expired broken)", got)
	}
	if res.Async == nil || res.Async.Steps == 0 {
		t.Fatalf("async engine report missing or inert: %+v", res.Async)
	}
	if res.Async.Parks == 0 {
		t.Fatal("no classify group ever parked on the shared scheduler")
	}
	rep := res.Faults
	if rep == nil {
		t.Fatal("chaos run returned no fault report")
	}
	if rep.Injected == 0 || rep.Touched == 0 {
		t.Fatalf("chaos plan was inert: %+v", rep)
	}
	if rep.Expired != res.ExpiredFrames() {
		t.Fatalf("report expired %d, device results say %d", rep.Expired, res.ExpiredFrames())
	}
	if rep.Crashes != 1 || rep.Restarts != 1 {
		t.Fatalf("crashes/restarts %d/%d, want 1/1", rep.Crashes, rep.Restarts)
	}
	if rep.Recovered != uint64(rep.QueuedAtCrash) {
		t.Fatalf("recovered %d, stranded at crash %d", rep.Recovered, rep.QueuedAtCrash)
	}
	if rep.TEEFaults == 0 {
		t.Fatalf("TEE fraction 0.5 hit no device: %+v", rep)
	}
	rb := res.Rebalance
	if rb == nil || !rb.Fired {
		t.Fatalf("mid-run rebalance did not fire: %+v", rb)
	}
	if rb.DrainedShard == "" || len(rb.AddedShards) != 1 {
		t.Fatalf("rebalance did not drain+add as configured: %+v", rb)
	}
	if res.Sched == nil || res.Sched.MixedVersionFlushes != 0 {
		t.Fatalf("scheduler report missing or version-mixed: %+v", res.Sched)
	}
	if res.Joined == 0 || res.Left == 0 {
		t.Fatalf("churn did not churn: joined %d, left %d", res.Joined, res.Left)
	}
}

// TestAsyncSchedOccupancy is the tentpole's perf acceptance pin: at 1000
// devices the async engine's true concurrent single-item enqueues must
// coalesce across devices into fuller shared flushes than the PR-8
// synchronous-producer baseline (4.0 items/flush at this scale — see
// docs/PERFORMANCE.md), and the task table must stay far below one live
// pipeline per device.
func TestAsyncSchedOccupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-device run")
	}
	// The PR-8 synchronous baseline at 1000 devices: producers block in
	// Classify, so on small hosts flushes mostly carry one device's whole
	// 4-item queue.
	const syncBaseline = 4.0
	res, err := Run(Config{
		Devices: 1000,
		Shards:  8,
		Seed:    1,
		Sched:   &SchedSpec{}, // defaults: batch core.MaxBatch
		Async:   &AsyncSpec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames", res.LostFrames())
	}
	rep := res.Sched
	if rep == nil || rep.Items == 0 {
		t.Fatalf("scheduler classified nothing: %+v", rep)
	}
	t.Logf("occupancy: raw %.2f steady %.2f (max %d, %d flushes, %d drain), parks %d, peak live %d",
		rep.MeanOccupancy, rep.MeanOccupancySteady, rep.MaxOccupancy,
		rep.Batches, rep.DrainBatches, res.Async.Parks, res.Async.PeakLive)
	if rep.MeanOccupancy <= syncBaseline {
		t.Fatalf("async mean occupancy %.2f items/flush does not beat the %.1f synchronous baseline",
			rep.MeanOccupancy, syncBaseline)
	}
	if rep.MeanOccupancySteady < rep.MeanOccupancy {
		t.Fatalf("steady occupancy %.2f below raw %.2f (drain tail can only drag the mean down)",
			rep.MeanOccupancySteady, rep.MeanOccupancy)
	}
	if res.Async.PeakLive > 500 {
		t.Fatalf("peak live pipelines %d at 1000 devices — the table is not bounding memory", res.Async.PeakLive)
	}
}

// TestAsyncRolloutRejected: the async engine cannot compose with a staged
// rollout (converge's full-population barrier would starve the bounded
// executor pool), so the combination is ErrBadConfig up front — never a
// deadlock. Bad executor counts are surfaced the same way.
func TestAsyncRolloutRejected(t *testing.T) {
	_, err := Run(Config{
		Devices:    4,
		Utterances: 1,
		Seed:       3,
		Rollout:    &RolloutSpec{CanaryFraction: 0.25},
		Async:      &AsyncSpec{},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("rollout+async: got %v, want ErrBadConfig", err)
	}
	_, err = Run(Config{
		Devices:    4,
		Utterances: 1,
		Seed:       3,
		Async:      &AsyncSpec{Executors: -1},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative executors: got %v, want ErrBadConfig", err)
	}
}

// TestSchedReportSteadyOccupancy is the fleet-side regression for the
// occupancy bugfix: SchedReport.MeanOccupancy averages over every flush
// including end-of-run drain flushes of size 0–1, which understates
// steady-state coalescing; MeanOccupancySteady excludes the drain tail.
// One full flush of 4 plus a drain flush of 1 must report raw 2.5 and
// steady 4.0 — and the raw figure alone would undersell the scheduler.
func TestSchedReportSteadyOccupancy(t *testing.T) {
	spec := &SchedSpec{Batch: 4, MaxAge: 1 << 40, Workers: 1}
	sc, err := newSchedControl(Config{Seed: 5, Sched: spec}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 5)
	cb := func(r sched.Response, err error) {
		if err != nil {
			t.Error(err)
		}
		fired <- struct{}{}
	}
	for i := 0; i < 4; i++ {
		if err := sc.scheduler.SubmitAsync(sched.Request{
			DeviceID: "d", Version: 0, Items: [][]int{{1, 2, 3}},
		}, cb); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 4; k++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatal("full flush callbacks missing")
		}
	}
	if err := sc.scheduler.SubmitAsync(sched.Request{
		DeviceID: "d", Version: 0, Items: [][]int{{4, 5}},
	}, cb); err != nil {
		t.Fatal(err)
	}
	sc.scheduler.Drain()
	rep := sc.report(spec)
	if rep.Batches != 2 || rep.Items != 5 {
		t.Fatalf("report: %+v, want 2 batches / 5 items", rep)
	}
	if rep.DrainBatches != 1 || rep.DrainItems != 1 {
		t.Fatalf("drain tally %d/%d, want 1 batch / 1 item", rep.DrainBatches, rep.DrainItems)
	}
	if rep.MeanOccupancy != 2.5 {
		t.Fatalf("raw mean occupancy %v, want 2.5 (drain tail included)", rep.MeanOccupancy)
	}
	if rep.MeanOccupancySteady != 4 {
		t.Fatalf("steady occupancy %v, want 4 (drain tail excluded)", rep.MeanOccupancySteady)
	}

	// All-drain degenerate run: the steady figure falls back to the raw
	// mean instead of dividing by zero.
	sc2, err := newSchedControl(Config{Seed: 5, Sched: spec}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc2.scheduler.SubmitAsync(sched.Request{
		DeviceID: "d", Version: 0, Items: [][]int{{1}},
	}, cb); err != nil {
		t.Fatal(err)
	}
	sc2.scheduler.Drain()
	rep2 := sc2.report(spec)
	if rep2.MeanOccupancySteady != rep2.MeanOccupancy || rep2.MeanOccupancy != 1 {
		t.Fatalf("all-drain fallback broken: raw %v steady %v, want 1/1",
			rep2.MeanOccupancy, rep2.MeanOccupancySteady)
	}
}
