package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tz"
)

// TestAsyncPipelineEquivalence is the event-driven tentpole's correctness
// pin: across 8 randomized configurations (population size, executor pool
// size, device batch, scheduler batch and deadline, churn, key rotation),
// the async engine's per-device audit fingerprints are bit-identical to
// the goroutine-per-device run of the same seed, with zero lost frames.
// The engine may move where waiting happens — never what any device's
// transcripts, verdicts or audit counters say.
func TestAsyncPipelineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		schedOn := trial%4 != 3 // 6 of 8 trials exercise the shared scheduler
		schedBatch := 2 + rng.Intn(core.MaxBatch-1)
		cfg := Config{
			Devices:    12 + rng.Intn(17), // 12..28
			Shards:     2 + rng.Intn(3),
			Utterances: 2,
			Frames:     2,
			Seed:       uint64(2000 + trial),
		}
		if schedOn {
			cfg.Batch = 1 + rng.Intn(schedBatch) // device queue must fit one flush
		} else {
			cfg.Batch = 1 + rng.Intn(core.MaxBatch)
		}
		if rng.Intn(2) == 1 {
			cfg.Churn = &ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25}
		}
		if rng.Intn(2) == 1 {
			cfg.Lifecycle = &LifecycleSpec{RotateFraction: 0.25}
		}
		maxAge := tz.Cycles(10_000 + rng.Intn(2_000_000))
		if schedOn {
			cfg.Sched = &SchedSpec{Batch: schedBatch, MaxAge: maxAge}
		}
		executors := 1 + rng.Intn(8)
		t.Logf("trial %d: devices=%d shards=%d batch=%d sched=%v/%d maxAge=%d churn=%v rotate=%v executors=%d",
			trial, cfg.Devices, cfg.Shards, cfg.Batch, schedOn, schedBatch, maxAge,
			cfg.Churn != nil, cfg.Lifecycle != nil, executors)

		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d sync: %v", trial, err)
		}
		acfg := cfg
		acfg.Async = &AsyncSpec{Executors: executors}
		async, err := Run(acfg)
		if err != nil {
			t.Fatalf("trial %d async: %v", trial, err)
		}

		if async.LostFrames() != 0 {
			t.Fatalf("trial %d: async run lost %d frames", trial, async.LostFrames())
		}
		if len(async.DeviceResults) != len(plain.DeviceResults) {
			t.Fatalf("trial %d: population diverged: %d vs %d devices",
				trial, len(async.DeviceResults), len(plain.DeviceResults))
		}
		for i := range plain.DeviceResults {
			if got, want := fingerprint(async.DeviceResults[i]), fingerprint(plain.DeviceResults[i]); got != want {
				t.Fatalf("trial %d device %d diverged under the async engine:\n async: %s\n  sync: %s",
					trial, i, got, want)
			}
		}
		if cfg.Lifecycle != nil && async.Rotated != plain.Rotated {
			t.Fatalf("trial %d: rotation diverged: async %d, sync %d", trial, async.Rotated, plain.Rotated)
		}
		arep := async.Async
		if arep == nil {
			t.Fatalf("trial %d: async run has no engine report", trial)
		}
		if arep.Steps < uint64(len(async.DeviceResults)) {
			t.Fatalf("trial %d: %d executor steps for %d devices (every device is at least one step)",
				trial, arep.Steps, len(async.DeviceResults))
		}
		if arep.PeakLive < 1 || arep.PeakLive > len(async.DeviceResults) {
			t.Fatalf("trial %d: peak live pipelines %d outside [1, %d]",
				trial, arep.PeakLive, len(async.DeviceResults))
		}
		if !schedOn {
			if arep.Parks != 0 {
				t.Fatalf("trial %d: %d groups parked with no scheduler wired", trial, arep.Parks)
			}
			continue
		}
		if arep.Parks == 0 {
			t.Fatalf("trial %d: scheduled async run parked no classify groups", trial)
		}
		rep := async.Sched
		if rep == nil {
			t.Fatalf("trial %d: scheduled async run has no scheduler report", trial)
		}
		if rep.Items == 0 || rep.Batches == 0 {
			t.Fatalf("trial %d: scheduler classified nothing: %+v", trial, rep)
		}
		if rep.MixedVersionFlushes != 0 {
			t.Fatalf("trial %d: %d flushes mixed model versions", trial, rep.MixedVersionFlushes)
		}
		if rep.MaxOccupancy > schedBatch {
			t.Fatalf("trial %d: flush of %d items exceeds scheduler batch %d",
				trial, rep.MaxOccupancy, schedBatch)
		}
		var flushed uint64
		for _, n := range rep.Flushes {
			flushed += n
		}
		if flushed != rep.Batches {
			t.Fatalf("trial %d: flush reasons account for %d batches, ran %d", trial, flushed, rep.Batches)
		}
	}
}

// TestAsyncPipelineUnderChaosRace is the engine's -race suite: the
// event-driven pipeline under a chaos plan (uplink drops, duplicates,
// delays, expiry blackholes, a shard crash) with churn and a mid-run
// ingest-tier rebalance, all flowing through the shared scheduler. The
// conservation identity must hold exactly — every emitted frame is
// ingested, shed, or expired, never silently lost — and the fault and
// rebalance reports must stay internally consistent.
func TestAsyncPipelineUnderChaosRace(t *testing.T) {
	res, err := Run(Config{
		Devices:    48,
		Shards:     3,
		Utterances: 2,
		Frames:     2,
		Seed:       11,
		Churn:      &ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25},
		Sched:      &SchedSpec{Batch: 4, MaxAge: 200_000},
		Async:      &AsyncSpec{Executors: 8},
		// Drain a shard the crash schedule does not target (crash targets
		// rotate from shard-00; a drained target would skip the crash).
		Rebalance: &RebalanceSpec{AtFraction: 0.5, AddShards: 1, DrainShard: 2},
		Faults: &FaultSpec{
			TouchFraction: 0.5,
			DropRate:      0.25,
			DuplicateRate: 0.15,
			DelayRate:     0.1,
			ExpireRate:    0.1,
			Crashes:       1,
			TEEFraction:   0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.LostFrames(); got != 0 {
		t.Fatalf("lost %d frames under async+chaos+rebalance (expected == ingested + shed + expired broken)", got)
	}
	if res.Async == nil || res.Async.Steps == 0 {
		t.Fatalf("async engine report missing or inert: %+v", res.Async)
	}
	if res.Async.Parks == 0 {
		t.Fatal("no classify group ever parked on the shared scheduler")
	}
	rep := res.Faults
	if rep == nil {
		t.Fatal("chaos run returned no fault report")
	}
	if rep.Injected == 0 || rep.Touched == 0 {
		t.Fatalf("chaos plan was inert: %+v", rep)
	}
	if rep.Expired != res.ExpiredFrames() {
		t.Fatalf("report expired %d, device results say %d", rep.Expired, res.ExpiredFrames())
	}
	if rep.Crashes != 1 || rep.Restarts != 1 {
		t.Fatalf("crashes/restarts %d/%d, want 1/1", rep.Crashes, rep.Restarts)
	}
	if rep.Recovered != uint64(rep.QueuedAtCrash) {
		t.Fatalf("recovered %d, stranded at crash %d", rep.Recovered, rep.QueuedAtCrash)
	}
	if rep.TEEFaults == 0 {
		t.Fatalf("TEE fraction 0.5 hit no device: %+v", rep)
	}
	rb := res.Rebalance
	if rb == nil || !rb.Fired {
		t.Fatalf("mid-run rebalance did not fire: %+v", rb)
	}
	if rb.DrainedShard == "" || len(rb.AddedShards) != 1 {
		t.Fatalf("rebalance did not drain+add as configured: %+v", rb)
	}
	if res.Sched == nil || res.Sched.MixedVersionFlushes != 0 {
		t.Fatalf("scheduler report missing or version-mixed: %+v", res.Sched)
	}
	if res.Joined == 0 || res.Left == 0 {
		t.Fatalf("churn did not churn: joined %d, left %d", res.Joined, res.Left)
	}
}

// TestAsyncSchedOccupancy is the tentpole's perf acceptance pin: at 1000
// devices the async engine's true concurrent single-item enqueues must
// coalesce across devices into fuller shared flushes than the PR-8
// synchronous-producer baseline (4.0 items/flush at this scale — see
// docs/PERFORMANCE.md), and the task table must stay far below one live
// pipeline per device.
func TestAsyncSchedOccupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-device run")
	}
	// The PR-8 synchronous baseline at 1000 devices: producers block in
	// Classify, so on small hosts flushes mostly carry one device's whole
	// 4-item queue.
	const syncBaseline = 4.0
	res, err := Run(Config{
		Devices: 1000,
		Shards:  8,
		Seed:    1,
		Sched:   &SchedSpec{}, // defaults: batch core.MaxBatch
		Async:   &AsyncSpec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames", res.LostFrames())
	}
	rep := res.Sched
	if rep == nil || rep.Items == 0 {
		t.Fatalf("scheduler classified nothing: %+v", rep)
	}
	t.Logf("occupancy: raw %.2f steady %.2f (max %d, %d flushes, %d drain), parks %d, peak live %d",
		rep.MeanOccupancy, rep.MeanOccupancySteady, rep.MaxOccupancy,
		rep.Batches, rep.DrainBatches, res.Async.Parks, res.Async.PeakLive)
	if rep.MeanOccupancy <= syncBaseline {
		t.Fatalf("async mean occupancy %.2f items/flush does not beat the %.1f synchronous baseline",
			rep.MeanOccupancy, syncBaseline)
	}
	if rep.MeanOccupancySteady < rep.MeanOccupancy {
		t.Fatalf("steady occupancy %.2f below raw %.2f (drain tail can only drag the mean down)",
			rep.MeanOccupancySteady, rep.MeanOccupancy)
	}
	if res.Async.PeakLive > 500 {
		t.Fatalf("peak live pipelines %d at 1000 devices — the table is not bounding memory", res.Async.PeakLive)
	}
}

// TestAsyncEngineWakeOnPartialGroupFlush is the deterministic lost-wakeup
// regression, reproducing the reviewer scenario exactly at the engine
// level: devices A and B interleave single-item submissions, the full
// flush cuts A0,B0,A1,B1 leaving A2,B2 queued, and both executors probe
// NotifyIdle while that flush is in flight (false) and go to sleep. The
// flush's four callbacks drain neither task, so under the old wake
// protocol — broadcast only when a group's count drained — no wakeup ever
// followed, the A2,B2 leftovers sat below the batch size forever, and
// run() hung. The fixed protocol broadcasts on every release and refuses
// to sleep while the scheduler still holds queued entries, so both tasks
// must resume.
func TestAsyncEngineWakeOnPartialGroupFlush(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	first := true
	s, err := sched.New(sched.Config{Batch: 4, MaxAge: 1 << 40, Workers: 1},
		func(version uint64, items [][]int) ([]bool, tz.Cycles, error) {
			if first { // pin the first flush in flight until the test releases it
				first = false
				close(started)
				<-gate
			}
			return make([]bool, len(items)), tz.Cycles(100 * len(items)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	e := &asyncEngine{r: &runner{sched: &schedControl{scheduler: s}}, execs: 2, active: 2}
	e.cond = sync.NewCond(&e.mu)

	// Two parked tasks, each a group of three single-item submissions:
	// remaining = 3 callbacks + 1 submitter hold, as captureOrFinish sets.
	mk := func() *devTask {
		return &devTask{flags: make([]bool, 3), occs: make([]int, 3),
			waits: make([]tz.Cycles, 3), remaining: 4}
	}
	A, B := mk(), mk()
	submit := func(id string, dt *devTask, j int) {
		t.Helper()
		err := s.SubmitAsync(sched.Request{DeviceID: id, Items: [][]int{{j}}},
			func(resp sched.Response, err error) {
				e.mu.Lock()
				if err != nil {
					dt.failed = err
				} else {
					dt.flags[j] = resp.Flagged[0]
					dt.occs[j] = resp.Occupancy
					dt.waits[j] = resp.Wait
				}
				e.release(dt, 1)
				e.mu.Unlock()
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The mid-interleave cut: the fourth submission fills the batch, so
	// the flush carries A0,B0,A1,B1 and blocks inside the classifier.
	submit("A", A, 0)
	submit("B", B, 0)
	submit("A", A, 1)
	submit("B", B, 1)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("full flush never started executing")
	}
	submit("A", A, 2) // the stranded leftovers: 2 items, below the batch of 4
	submit("B", B, 2)
	e.mu.Lock()
	e.release(A, 1) // submitter holds, as captureOrFinish's tail drops them
	e.release(B, 1)
	e.mu.Unlock()

	// Both executors run the production scheduling loop: with no ready
	// task and no admissions they probe NotifyIdle (false — the flush is
	// in flight) and park in cond.Wait.
	resumed := make(chan *devTask, 2)
	for i := 0; i < 2; i++ {
		go func() {
			for {
				dt := e.nextTask()
				if dt == nil {
					return
				}
				resumed <- dt
				e.finish(dt, nil)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let both executors park behind the flush
	close(gate)                       // flush completes; its callbacks drain neither task

	for i := 0; i < 2; i++ {
		select {
		case dt := <-resumed:
			if dt != A && dt != B {
				t.Fatal("unknown task resumed")
			}
			if dt.failed != nil {
				t.Fatalf("task resumed with error: %v", dt.failed)
			}
			if dt.remaining != 0 {
				t.Fatalf("task resumed with %d holds outstanding", dt.remaining)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("executors slept through the partial-group flush: A2,B2 stranded (lost wakeup)")
		}
	}
	s.Drain()
	if st := s.Stats(); st.Items != 6 || st.Flushes[sched.ReasonIdle] == 0 {
		t.Fatalf("expected all 6 items classified with an idle rescue cut: %+v", st)
	}
}

// TestAsyncPartialGroupCutLiveness is the lost-wakeup regression: with a
// scheduler batch (4) that does not divide the per-device group size (3),
// "full" flushes routinely cut mid-interleave — e.g. A0,B0,A1,B1 with
// A2,B2 left queued — delivering callbacks that drain no task. Under the
// old wake protocol (broadcast only when a group's count drained) every
// executor could probe NotifyIdle while that flush was still in flight,
// find nothing to cut, and sleep with no wakeup ever coming: the leftover
// entries sat below the batch size, the scheduler clock was frozen, and
// run() hung forever. The async run must terminate and stay bit-identical
// to the synchronous path.
func TestAsyncPartialGroupCutLiveness(t *testing.T) {
	for seed := uint64(0); seed < 24; seed++ {
		// An all-secure-filter population whose admissions exhaust
		// immediately, so the executors race to interleave their groups'
		// single-item submissions and then have nothing left but the
		// NotifyIdle probe; Workers:1 keeps exactly one flush in flight
		// for them to sleep behind, and the effectively infinite deadline
		// means only an idle cut can ever rescue stranded leftovers.
		cfg := Config{
			Devices:          4,
			DoorbellFraction: -1,                                // speakers only
			Mix:              MixSpec{core.ModeSecureFilter: 1}, // every device secure-filter
			Shards:           1,
			Utterances:       3, // one parked group of 3 per device
			Frames:           1,
			Batch:            3,
			Sched:            &SchedSpec{Batch: 4, MaxAge: 1 << 40, Workers: 1},
			Seed:             7000 + seed,
		}
		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d sync: %v", cfg.Seed, err)
		}
		acfg := cfg
		acfg.Async = &AsyncSpec{Executors: 2}
		type outcome struct {
			res *Result
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			res, err := Run(acfg)
			ch <- outcome{res, err}
		}()
		var async *Result
		select {
		case o := <-ch:
			if o.err != nil {
				t.Fatalf("seed %d async: %v", cfg.Seed, o.err)
			}
			async = o.res
		case <-time.After(60 * time.Second):
			t.Fatalf("seed %d: async run deadlocked — executors slept through a partial-group flush completion", cfg.Seed)
		}
		if async.LostFrames() != 0 {
			t.Fatalf("seed %d: async run lost %d frames", cfg.Seed, async.LostFrames())
		}
		if len(async.DeviceResults) != len(plain.DeviceResults) {
			t.Fatalf("seed %d: population diverged: %d vs %d devices",
				cfg.Seed, len(async.DeviceResults), len(plain.DeviceResults))
		}
		for i := range plain.DeviceResults {
			if got, want := fingerprint(async.DeviceResults[i]), fingerprint(plain.DeviceResults[i]); got != want {
				t.Fatalf("seed %d device %d diverged:\n async: %s\n  sync: %s", cfg.Seed, i, got, want)
			}
		}
	}
}

// TestAsyncRolloutRejected: the async engine cannot compose with a staged
// rollout (converge's full-population barrier would starve the bounded
// executor pool), so the combination is ErrBadConfig up front — never a
// deadlock. Bad executor counts are surfaced the same way.
func TestAsyncRolloutRejected(t *testing.T) {
	_, err := Run(Config{
		Devices:    4,
		Utterances: 1,
		Seed:       3,
		Rollout:    &RolloutSpec{CanaryFraction: 0.25},
		Async:      &AsyncSpec{},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("rollout+async: got %v, want ErrBadConfig", err)
	}
	_, err = Run(Config{
		Devices:    4,
		Utterances: 1,
		Seed:       3,
		Async:      &AsyncSpec{Executors: -1},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative executors: got %v, want ErrBadConfig", err)
	}
}

// TestSchedReportSteadyOccupancy is the fleet-side regression for the
// occupancy bugfix: SchedReport.MeanOccupancy averages over every flush
// including end-of-run drain flushes of size 0–1, which understates
// steady-state coalescing; MeanOccupancySteady excludes the drain tail.
// One full flush of 4 plus a drain flush of 1 must report raw 2.5 and
// steady 4.0 — and the raw figure alone would undersell the scheduler.
func TestSchedReportSteadyOccupancy(t *testing.T) {
	spec := &SchedSpec{Batch: 4, MaxAge: 1 << 40, Workers: 1}
	sc, err := newSchedControl(Config{Seed: 5, Sched: spec}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 5)
	cb := func(r sched.Response, err error) {
		if err != nil {
			t.Error(err)
		}
		fired <- struct{}{}
	}
	for i := 0; i < 4; i++ {
		if err := sc.scheduler.SubmitAsync(sched.Request{
			DeviceID: "d", Version: 0, Items: [][]int{{1, 2, 3}},
		}, cb); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 4; k++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatal("full flush callbacks missing")
		}
	}
	if err := sc.scheduler.SubmitAsync(sched.Request{
		DeviceID: "d", Version: 0, Items: [][]int{{4, 5}},
	}, cb); err != nil {
		t.Fatal(err)
	}
	sc.scheduler.Drain()
	rep := sc.report(spec)
	if rep.Batches != 2 || rep.Items != 5 {
		t.Fatalf("report: %+v, want 2 batches / 5 items", rep)
	}
	if rep.DrainBatches != 1 || rep.DrainItems != 1 {
		t.Fatalf("drain tally %d/%d, want 1 batch / 1 item", rep.DrainBatches, rep.DrainItems)
	}
	if rep.MeanOccupancy != 2.5 {
		t.Fatalf("raw mean occupancy %v, want 2.5 (drain tail included)", rep.MeanOccupancy)
	}
	if rep.MeanOccupancySteady != 4 {
		t.Fatalf("steady occupancy %v, want 4 (drain tail excluded)", rep.MeanOccupancySteady)
	}

	// All-drain degenerate run: the steady figure falls back to the raw
	// mean instead of dividing by zero.
	sc2, err := newSchedControl(Config{Seed: 5, Sched: spec}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc2.scheduler.SubmitAsync(sched.Request{
		DeviceID: "d", Version: 0, Items: [][]int{{1}},
	}, cb); err != nil {
		t.Fatal(err)
	}
	sc2.scheduler.Drain()
	rep2 := sc2.report(spec)
	if rep2.MeanOccupancySteady != rep2.MeanOccupancy || rep2.MeanOccupancy != 1 {
		t.Fatalf("all-drain fallback broken: raw %v steady %v, want 1/1",
			rep2.MeanOccupancy, rep2.MeanOccupancySteady)
	}
}
