package fleet

// Attested fleet handshakes and online model rollout. With Config.Attest
// the run enrolls every device's derived attestation key with a
// cloud-side verifier, installs the verifier as the ingest tier's
// admission gate, and has each device produce TA-signed evidence before
// its endpoint joins the ring — so a frame from a device that never
// attested (or that attested with a stale model) is rejected at the
// shard frontend without touching an endpoint. With Config.Rollout the
// provider additionally publishes a version-2 model pack behind a canary
// quota: the first cohort of secure devices updates (manifest-verified,
// sealed, hot-swapped in the TA) before processing, the rest hold the
// base pack until every canary device completes successfully, then the
// rollout opens and the whole fleet converges on the new version.

import (
	"fmt"
	"sync"

	"errors"

	"repro/internal/attest"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/ml/classify"
	"repro/internal/obs"
	"repro/internal/sensitive"
)

// RolloutSpec stages an online model rollout during the run.
type RolloutSpec struct {
	// ToModelSeed is the training seed of the published version-2 pack
	// (0 = derived from the root seed via SaltModelRollout).
	ToModelSeed uint64
	// CanaryFraction of the secure (model-bearing) population updates
	// first; default 0.1, clamped to (0, 1].
	CanaryFraction float64
}

// RolloutReport summarizes a staged rollout after the run.
type RolloutReport struct {
	BaseVersion uint64
	ToVersion   uint64
	// Canary is the canary-cohort size the rollout was staged behind
	// (counted over the devices that actually run the classifier).
	Canary int
	// Converged reports whether every model-bearing device finished the
	// run attested at ToVersion.
	Converged bool
	// MinVersion is the fleet minimum the verifier enforces at ingest
	// after the rollout opened (0 if the rollout never completed).
	MinVersion uint64
	// AbortReason is why the rollout aborted ("" if it was never
	// aborted, or aborted only after opening fleet-wide).
	AbortReason string
	// Rollbacks records every device held on (or returned to) the base
	// pack because the rollout aborted — the structured trail an aborted
	// rollout must leave instead of a silently stale fleet.
	Rollbacks []RollbackRecord
}

// RollbackRecord attributes one device's stale pack to a rollout abort.
type RollbackRecord struct {
	// Device is the affected device ID.
	Device string
	// FromVersion is the pack version the device stays on;
	// ToVersion the version it was destined for.
	FromVersion, ToVersion uint64
	// Reason is the rollout's abort reason.
	Reason string
}

// attestState bundles the run's attestation/rollout machinery. Exactly
// one of verifier (single trust root) and fed (per-tenant federation) is
// non-nil; authority() routes every control-plane call to the right
// verifier by the device's tenant label.
type attestState struct {
	verifier *attest.Verifier
	fed      *attest.Federation
	rollout  *attest.Rollout
	canary   int
	base     attest.Pack
	next     attest.Pack
	// Pack digests are computed once per immutable pack, not once per
	// device, and reused for every per-device manifest.
	baseDigest attest.Digest
	nextDigest attest.Digest
	// tracer counts attestation verbs (nil on untraced runs; every
	// method on a nil tracer no-ops).
	tracer *obs.Tracer

	mu        sync.Mutex
	rollbacks []RollbackRecord
}

// authority returns the verifier owning the tenant (the single verifier
// on non-federated runs).
func (st *attestState) authority(tenant string) *attest.Verifier {
	if st.fed != nil {
		return st.fed.Tenant(tenant)
	}
	return st.verifier
}

// gate returns the ingest admission gate: the federation on federated
// runs (per-frame routing by FrameMeta.Tenant), the verifier otherwise.
func (st *attestState) gate() cloud.AdmissionGate {
	if st.fed != nil {
		return st.fed
	}
	return st.verifier
}

// eachAuthority visits every verifier (all tenants, or the single one).
func (st *attestState) eachAuthority(fn func(v *attest.Verifier)) {
	if st.fed == nil {
		fn(st.verifier)
		return
	}
	for _, t := range st.fed.Tenants() {
		fn(st.fed.Tenant(t))
	}
}

// setMinVersion raises the ingest floor on every authority.
func (st *attestState) setMinVersion(v uint64) {
	st.eachAuthority(func(a *attest.Verifier) { a.SetMinVersion(v) })
}

// attestedCount sums attested devices across authorities.
func (st *attestState) attestedCount() int {
	if st.fed != nil {
		return st.fed.AttestedCount()
	}
	return st.verifier.AttestedCount()
}

// versionCounts merges the per-authority model-version tallies.
func (st *attestState) versionCounts() map[uint64]int {
	out := make(map[uint64]int)
	st.eachAuthority(func(a *attest.Verifier) {
		for v, n := range a.VersionCounts() {
			out[v] += n
		}
	})
	return out
}

// epochCounts merges the per-authority key-epoch tallies.
func (st *attestState) epochCounts() map[uint64]int {
	out := make(map[uint64]int)
	st.eachAuthority(func(a *attest.Verifier) {
		for e, n := range a.EpochCounts() {
			out[e] += n
		}
	})
	return out
}

// newAttestState enrolls the population's keys, builds the verifier —
// or, on federated runs, one verifier per tenant plus an admit-nothing
// fallback for unlabelled traffic — and the measurement policy, and,
// when a rollout is staged, trains and publishes the packs. Pack
// training hits the same shared-model caches the device constructors
// use, so it belongs to the build phase.
func newAttestState(cfg Config, specs []core.DeviceSpec) (*attestState, error) {
	keys := make(map[string]attest.DeviceKey, len(specs))
	for i := range specs {
		keys[specs[i].DeviceID] = attest.KeyFromSeed(specs[i].AttestKeySeed)
	}
	lookup := func(id string) (attest.DeviceKey, bool) {
		k, ok := keys[id]
		return k, ok
	}
	allow := func(v *attest.Verifier) {
		v.AllowMeasurement(core.VoiceTADigest, true)
		v.AllowMeasurement(core.CameraTADigest, true)
		v.AllowMeasurement(core.BaselineAgentDigest, false)
	}

	st := &attestState{}
	if cfg.Federate {
		// The fallback admits nothing: a frame with no tenant label (or a
		// label no tenant claims) is rejected as unattested rather than
		// silently judged under someone else's policy.
		st.fed = attest.NewFederation(nil)
		for t := 0; t < cfg.Tenants; t++ {
			v := attest.NewVerifier(cfg.Seed, lookup)
			allow(v)
			st.fed.AddTenant(tenantName(t), v)
		}
	} else {
		st.verifier = attest.NewVerifier(cfg.Seed, lookup)
		allow(st.verifier)
	}
	if cfg.Rollout == nil {
		return st, nil
	}
	// Train only the classifier classes the population actually runs:
	// an all-speaker fleet must not pay for an image model (and vice
	// versa). Mirrors the kind/mode logic in core.Pretrain. The same
	// scan sizes the canary cohort over the devices that *exercise* the
	// classifier — a secure-nofilter speaker updating successfully says
	// nothing about the new model, so it cannot hold a canary slot.
	needText, needImage := false, false
	exercising := 0
	for i := range specs {
		if specs[i].Mode != core.ModeSecureFilter {
			continue
		}
		exercising++
		switch specs[i].Kind {
		case core.DeviceSpeaker:
			needText = true
		case core.DeviceDoorbell:
			needImage = true
		}
	}
	base, err := buildPack(1, cfg.Seed, needText, needImage)
	if err != nil {
		return nil, fmt.Errorf("fleet rollout: base pack: %w", err)
	}
	nextSeed := cfg.Rollout.ToModelSeed
	if nextSeed == 0 {
		nextSeed = core.DeriveSeed(cfg.Seed, core.SaltModelRollout, 2)
	}
	next, err := buildPack(2, nextSeed, needText, needImage)
	if err != nil {
		return nil, fmt.Errorf("fleet rollout: next pack: %w", err)
	}
	st.base, st.next = base, next
	st.baseDigest, st.nextDigest = base.Digest(), next.Digest()
	st.canary = int(float64(exercising)*cfg.Rollout.CanaryFraction + 0.5)
	if st.canary < 1 && exercising > 0 {
		st.canary = 1
	}
	if st.canary > exercising {
		st.canary = exercising
	}
	st.rollout = attest.NewRollout(base)
	if err := st.rollout.Publish(next, st.canary); err != nil {
		return nil, fmt.Errorf("fleet rollout: %w", err)
	}
	return st, nil
}

// buildPack trains (or fetches from the shared caches) the classifier
// weights for a pack version; payload classes the population does not
// run stay empty. The fleet population runs the CNN text classifier and
// the standard image classifier, both at the default epoch budget — the
// same models Pretrain warms.
func buildPack(version, modelSeed uint64, needText, needImage bool) (attest.Pack, error) {
	pack := attest.Pack{Version: version, ModelSeed: modelSeed}
	if needText {
		text, err := core.TrainClassifier(classify.ArchCNN, sensitive.NewVocabulary(), modelSeed, 8)
		if err != nil {
			return attest.Pack{}, err
		}
		pack.Text = text.SerializeWeights()
	}
	if needImage {
		image, err := core.TrainImageClassifier(modelSeed)
		if err != nil {
			return attest.Pack{}, err
		}
		pack.Image = image.SerializeWeights()
	}
	return pack, nil
}

// manifest signs the per-device token for one of the run's two packs,
// reusing the digest computed once at publish time. The token comes
// from the device's own authority, so it is MACed under the key epoch
// that authority currently expects of the device.
func (st *attestState) manifest(id, tenant string, pack attest.Pack) (attest.ManifestToken, error) {
	d := st.nextDigest
	if pack.Version == st.base.Version {
		d = st.baseDigest
	}
	return st.authority(tenant).ManifestForDigest(id, pack.Version, d)
}

// provision brings the device to its current rollout target. Devices
// that exercise the classifier (secure-filter) go through the staged
// cohort: canaries update before processing, the rest hold the base
// pack until the canary verdict, and devices joining after the rollout
// opened get the newest version immediately. Secure devices that never
// run the classifier (nofilter speakers) sit outside the staging — the
// new pack cannot misbehave on them, so they take it at once and the
// canary verdict stays meaningful.
func (st *attestState) provision(d *core.Device, id, tenant string) error {
	if st.rollout == nil || d.Spec.Mode == core.ModeBaseline {
		return nil
	}
	pack := st.next
	if d.Spec.Mode == core.ModeSecureFilter {
		pack = st.rollout.Target(id)
	}
	if pack.Version <= d.ModelVersion() {
		return nil
	}
	tok, err := st.manifest(id, tenant, pack)
	if err != nil {
		return err
	}
	return d.UpdateModel(pack, tok)
}

// handshake runs the challenge/report/verify exchange that admits the
// device's traffic at the ingest tier, against the device's authority.
func (st *attestState) handshake(d *core.Device, id, tenant string) error {
	auth := st.authority(tenant)
	nonce := auth.Challenge(id)
	rep, err := d.Attest(nonce)
	if err != nil {
		return fmt.Errorf("attest %s: %w", id, err)
	}
	if err := auth.Verify(rep); err != nil {
		return fmt.Errorf("verify %s: %w", id, err)
	}
	st.tracer.Verb(obs.VerbVerify)
	return nil
}

// converge is the post-workload rollout step for staged (secure-filter)
// devices: report the outcome (canary successes open the rollout), then
// — if the device is still on the base pack — wait for the canary
// verdict, update to the newest version and re-attest so the verifier
// observes convergence. Only cohort members can be waiting here, and a
// cohort slot is denied only once every slot is granted to a device
// that started earlier, so the bounded worker pool cannot deadlock.
//
// A leaving device reports its outcome (its truncated workload did
// complete on its granted version) but never waits for the verdict —
// it is departing, and a blocked leaver could wedge the worker pool.
func (st *attestState) converge(d *core.Device, id, tenant string, leaving bool) error {
	if st.rollout == nil || d.Spec.Mode != core.ModeSecureFilter {
		return nil
	}
	st.rollout.ReportSuccess(id)
	if d.ModelVersion() >= st.rollout.LatestVersion() {
		return nil
	}
	if leaving {
		return nil
	}
	if !st.rollout.AwaitFull() {
		// Rollout aborted: the device keeps the base pack, and the abort
		// leaves a structured trail instead of a silently stale fleet.
		_, reason := st.rollout.Aborted()
		st.recordRollback(id, d.ModelVersion(), st.rollout.LatestVersion(), reason)
		return nil
	}
	if err := st.provision(d, id, tenant); err != nil {
		return err
	}
	return st.handshake(d, id, tenant)
}

// recordRollback appends one abort-attributed rollback record.
func (st *attestState) recordRollback(id string, from, to uint64, reason string) {
	st.mu.Lock()
	st.rollbacks = append(st.rollbacks, RollbackRecord{
		Device: id, FromVersion: from, ToVersion: to, Reason: reason,
	})
	st.mu.Unlock()
}

// rogueEndpoint is an adversarial client that registered an endpoint on
// the ingest tier without ever attesting. The admission gate must keep
// its delivered count at zero.
type rogueEndpoint struct {
	mu        sync.Mutex
	delivered int
}

var _ cloud.Provider = (*rogueEndpoint)(nil)

func (r *rogueEndpoint) Deliver(frame []byte) ([]byte, error) {
	r.mu.Lock()
	r.delivered++
	r.mu.Unlock()
	return []byte("{}"), nil
}

func (r *rogueEndpoint) Audit() cloud.Audit {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cloud.Audit{Events: r.delivered}
}

func (r *rogueEndpoint) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.delivered = 0
}

// fillAttestResult derives the attested-run observability fields: the
// fleet-wide and per-shard model-version tallies (for model-bearing
// devices, as the verifier recorded them), the lifecycle/federation
// tallies and the rollout report.
func fillAttestResult(res *Result, cfg Config, specs []core.DeviceSpec, st *attestState, router *cloud.Router) {
	res.AttestedDevices = st.attestedCount()
	res.ModelVersions = st.versionCounts()
	if cfg.Lifecycle != nil {
		res.KeyEpochs = st.epochCounts()
	}
	if st.fed != nil {
		res.TenantAttested = st.fed.AttestedByTenant()
	}
	res.ShardModelVersions = make(map[string]map[uint64]int)
	for i := range specs {
		if specs[i].Mode == core.ModeBaseline {
			continue // no model pack; excluded from version tallies
		}
		id := specs[i].DeviceID
		m, ok := st.authority(tenantFor(cfg, i)).Attested(id)
		if !ok {
			continue
		}
		shard := router.ShardFor(id).Name()
		byVersion := res.ShardModelVersions[shard]
		if byVersion == nil {
			byVersion = make(map[uint64]int)
			res.ShardModelVersions[shard] = byVersion
		}
		byVersion[m.ModelVersion]++
	}
	if st.rollout == nil {
		return
	}
	rep := &RolloutReport{
		BaseVersion: st.base.Version,
		ToVersion:   st.next.Version,
		Canary:      st.canary,
	}
	rep.Converged = st.rollout.Full() && len(res.ModelVersions) == 1 &&
		res.ModelVersions[rep.ToVersion] > 0
	if st.rollout.Full() {
		rep.MinVersion = st.next.Version // enforced at ingest; see Run
	}
	st.mu.Lock()
	rep.Rollbacks = append([]RollbackRecord(nil), st.rollbacks...)
	st.mu.Unlock()
	if len(rep.Rollbacks) > 0 {
		rep.AbortReason = rep.Rollbacks[0].Reason
	} else if aborted, reason := st.rollout.Aborted(); aborted && !st.rollout.Full() {
		rep.AbortReason = reason
	}
	res.Rollout = rep
}

// runRogues registers unattested clients and fires their frames at the
// ring, tallying attempts, gate rejections, and (what must stay zero)
// frames that reached an endpoint. The rogue endpoints are deregistered
// afterwards so the audited shard stats describe the real population.
// Rogues sample like real devices (trace seeds continue the population's
// index space from seedBase), and each attempt's admission outcome is a
// zero-duration StageAdmit span — no device virtual clock runs for an
// off-fleet client.
func runRogues(cfg Config, router *cloud.Router, tracer *obs.Tracer, seedBase int) (attempts, rejected, ingested int) {
	for i := 0; i < cfg.Rogues; i++ {
		id := fmt.Sprintf("rogue-%03d", i)
		// Rogues carry no real billing label; the dump grammar demands an
		// identifier, so their spans are labelled "unattested".
		tc := tracer.Device(id, "unattested", core.DeriveSeed(cfg.Seed, core.SaltTrace, seedBase+i))
		ep := &rogueEndpoint{}
		router.Register(id, ep)
		for j := 0; j < cfg.Utterances; j++ {
			attempts++
			_, err := router.Ingest(id, []byte("unattested payload"))
			if err != nil {
				rejected++
			}
			if tc.Enabled() {
				tc.NextItem()
				switch {
				case err == nil:
					tc.Emit(obs.StageAdmit, obs.VerdictDelivered, 0, 0, 0, 0)
				case errors.Is(err, cloud.ErrShed):
					tc.Emit(obs.StageAdmit, obs.VerdictShed, 0, 0, 0, 0)
				default:
					tc.Emit(obs.StageAdmit, cloud.RejectVerdict(err), 0, 0, 0, 0)
				}
			}
		}
		ingested += ep.Audit().Events
		router.Deregister(id)
	}
	return attempts, rejected, ingested
}
