package fleet

import "testing"

// TestAttestedFleetMatchesPlainAudit: attestation is pure control plane —
// with no rollout staged, an attested run must reproduce the plain run's
// audit exactly (same root seed, same workloads, same model).
func TestAttestedFleetMatchesPlainAudit(t *testing.T) {
	base := Config{Devices: 24, Shards: 4, Utterances: 2, Frames: 2, Seed: 9}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	attested := base
	attested.Attest = true
	got, err := Run(attested)
	if err != nil {
		t.Fatal(err)
	}
	if got.Audit.Events != plain.Audit.Events ||
		got.Audit.TokensSeen != plain.Audit.TokensSeen ||
		got.Audit.SensitiveTokens != plain.Audit.SensitiveTokens ||
		got.Audit.AudioBytes != plain.Audit.AudioBytes {
		t.Fatalf("attested audit differs from plain:\n%+v\n%+v", got.Audit, plain.Audit)
	}
	if got.LostFrames() != 0 {
		t.Fatalf("attested run lost %d frames", got.LostFrames())
	}
	for _, s := range got.ShardStats {
		if s.Rejected != 0 {
			t.Fatalf("shard %s rejected %d frames from attested devices", s.Name, s.Rejected)
		}
	}
	// Every uplinking device attested; baseline doorbells (no uplink) are
	// exempt.
	uplinking := 0
	for _, s := range got.ShardStats {
		uplinking += s.Devices
	}
	if got.AttestedDevices < uplinking {
		t.Fatalf("%d attested < %d uplinking devices", got.AttestedDevices, uplinking)
	}
	// Without a rollout, every model-bearing device reports version 1.
	if len(got.ModelVersions) != 1 || got.ModelVersions[1] == 0 {
		t.Fatalf("model versions = %v, want all v1", got.ModelVersions)
	}
}

// TestAttestedRolloutConverges is the staged-rollout integration test:
// zero unattested events ingested, zero frames lost, and every
// model-bearing device attested at the new version by the end.
func TestAttestedRolloutConverges(t *testing.T) {
	res, err := Run(Config{
		Devices:    32,
		Shards:     4,
		Utterances: 2,
		Frames:     2,
		Seed:       13,
		Rollout:    &RolloutSpec{CanaryFraction: 0.2},
		Rogues:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames during rollout", res.LostFrames())
	}
	if res.Rollout == nil || !res.Rollout.Converged {
		t.Fatalf("rollout did not converge: %+v (versions %v)", res.Rollout, res.ModelVersions)
	}
	if res.Rollout.BaseVersion != 1 || res.Rollout.ToVersion != 2 {
		t.Fatalf("rollout versions %d -> %d, want 1 -> 2", res.Rollout.BaseVersion, res.Rollout.ToVersion)
	}
	if res.Rollout.Canary < 1 {
		t.Fatalf("canary cohort %d", res.Rollout.Canary)
	}
	if len(res.ModelVersions) != 1 || res.ModelVersions[2] == 0 {
		t.Fatalf("fleet did not converge on v2: %v", res.ModelVersions)
	}
	// Per-shard rollout progress sums to the fleet-wide tally.
	perShard := 0
	for _, byVersion := range res.ShardModelVersions {
		for v, n := range byVersion {
			if v != 2 {
				t.Fatalf("shard tally has stragglers at v%d: %v", v, res.ShardModelVersions)
			}
			perShard += n
		}
	}
	if perShard != res.ModelVersions[2] {
		t.Fatalf("shard tallies sum to %d, fleet-wide %d", perShard, res.ModelVersions[2])
	}
	// The unattested adversaries got nothing through.
	if res.RogueAttempts == 0 || res.RogueRejected != res.RogueAttempts {
		t.Fatalf("rogues: %d/%d rejected", res.RogueRejected, res.RogueAttempts)
	}
	if res.UnattestedIngested != 0 {
		t.Fatalf("%d unattested events reached an endpoint", res.UnattestedIngested)
	}
	rejected := uint64(0)
	for _, s := range res.ShardStats {
		rejected += s.Rejected
	}
	if rejected != uint64(res.RogueAttempts) {
		t.Fatalf("shards counted %d rejections, rogues attempted %d", rejected, res.RogueAttempts)
	}
}

// TestRolloutSpeakersOnly exercises the rollout on a speakers-only
// population (text-classifier pack path only).
func TestRolloutSpeakersOnly(t *testing.T) {
	res, err := Run(Config{
		Devices:          12,
		DoorbellFraction: -1,
		Shards:           2,
		Utterances:       2,
		Seed:             21,
		Rollout:          &RolloutSpec{}, // defaults: 10% canary, derived seed
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rollout.Converged {
		t.Fatalf("speakers-only rollout did not converge: %v", res.ModelVersions)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames", res.LostFrames())
	}
}

// TestPlanEnrollsAttestKeys: attested plans derive a distinct non-zero
// key seed per device; plain plans leave attestation disabled.
func TestPlanEnrollsAttestKeys(t *testing.T) {
	attested, err := Plan(Config{Devices: 16, Seed: 5, Attest: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, s := range attested {
		if s.AttestKeySeed == 0 || s.ModelVersion != 1 || s.DeviceID == "" {
			t.Fatalf("spec not enrolled: %+v", s)
		}
		if seen[s.AttestKeySeed] {
			t.Fatalf("attestation key seed %d reused", s.AttestKeySeed)
		}
		seen[s.AttestKeySeed] = true
	}
	plain, err := Plan(Config{Devices: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plain {
		if s.AttestKeySeed != 0 || s.ModelVersion != 0 {
			t.Fatalf("plain plan enrolled attestation: %+v", s)
		}
	}
}
