package fleet

// Fleet-scope chaos. Config.Faults compiles an internal/fault plan over
// the whole population (base devices and joiners alike) and wires the
// run to both inject and survive it: touched devices get the plan's
// injector spliced between their uplink and the router plus a
// virtual-time retry layer (core.RetrySink) around the whole delivery;
// the ingest tier gets a shard supervisor that restarts crashed shards
// and replays their stranded queues; and the faultDriver below fires
// the scheduled shard crashes at deterministic completion thresholds,
// mirroring the rebalancer's trigger pattern.
//
// The accounting contract under chaos is the same as without it, with
// one new explicit bucket: every emitted frame is ingested, shed, or
// expired (retry budget exhausted — an accounted outcome, never a
// silent loss), so Result.LostFrames stays 0 through crashes, drops,
// duplicates and delays. E15 asserts this, plus bit-identical audits
// for every device the plan does not touch.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/tz"
)

// FaultSpec drives a deterministic chaos plan against the run. Zero
// rates inject nothing; Crashes schedules shard crash/restart cycles at
// evenly spaced completion points; SlowShard inflates one shard's
// wall-clock serve latency for the whole run (latency only — virtual
// time and accounting are untouched).
type FaultSpec struct {
	// TouchFraction of the population is subject to uplink injection
	// (default 0.25); see fault.PlanConfig.
	TouchFraction float64
	// Per-delivery injection rates on touched devices (sum ≤ 1).
	DropRate      float64
	DuplicateRate float64
	DelayRate     float64
	ExpireRate    float64
	// DelayCycles is the virtual delay per delayed delivery (default
	// 50_000); SlowFraction of touched devices pay SlowCycles (default
	// 200_000) extra per delivery; TEEFraction hit a transient TEE error
	// at provisioning, charged as TEEPenalty cycles (default 1_000_000).
	DelayCycles  tz.Cycles
	SlowFraction float64
	SlowCycles   tz.Cycles
	TEEFraction  float64
	TEEPenalty   tz.Cycles
	// Crashes is the number of shard crash/restart cycles to fire,
	// rotating over the founding shards.
	Crashes int
	// SlowShard is the 1-based index of a founding shard to slow for the
	// whole run (0 = none); SlowServe is the injected wall-clock serve
	// delay per frame (default 200µs).
	SlowShard int
	SlowServe time.Duration
	// Retry overrides the device-side retry layer; zero fields take
	// core.RetryConfig defaults. The per-device jitter seed is always
	// derived from Seed, never taken from here.
	Retry core.RetryConfig
	// Seed roots the plan's streams (0 = derived from the root seed via
	// core.SaltFault).
	Seed uint64
}

func (f *FaultSpec) fillDefaults(root uint64, shards int) error {
	if f.Crashes < 0 {
		return fmt.Errorf("%w: %d fault crashes", ErrBadConfig, f.Crashes)
	}
	if f.SlowShard < 0 || f.SlowShard > shards {
		return fmt.Errorf("%w: fault slow-shard %d of %d", ErrBadConfig, f.SlowShard, shards)
	}
	if f.SlowServe == 0 {
		f.SlowServe = 200 * time.Microsecond
	}
	if f.Seed == 0 {
		f.Seed = core.DeriveSeed(root, core.SaltFault, 0)
	}
	// Mirror fault.NewPlan's rate bounds here so a bad config fails
	// before the build phase trains any model.
	for _, v := range []float64{f.TouchFraction, f.DropRate, f.DuplicateRate,
		f.DelayRate, f.ExpireRate, f.SlowFraction, f.TEEFraction} {
		// NaN compares false against both bounds — match fault.NewPlan's
		// explicit rejection.
		if !(v >= 0 && v <= 1) {
			return fmt.Errorf("%w: fault rate %v outside [0,1]", ErrBadConfig, v)
		}
	}
	if sum := f.DropRate + f.DuplicateRate + f.DelayRate + f.ExpireRate; sum > 1 {
		return fmt.Errorf("%w: fault injection rates sum to %v > 1", ErrBadConfig, sum)
	}
	if f.DelayCycles < 0 || f.SlowCycles < 0 || f.TEEPenalty < 0 {
		return fmt.Errorf("%w: negative fault cycle counts %d/%d/%d",
			ErrBadConfig, f.DelayCycles, f.SlowCycles, f.TEEPenalty)
	}
	return nil
}

// attempts is the effective retry-attempt bound, which also sizes the
// plan's expiry blackholes.
func (f *FaultSpec) attempts() int {
	if f.Retry.Attempts > 0 {
		return f.Retry.Attempts
	}
	return 8
}

// FaultReport summarizes what the chaos plan did and what the system
// did about it.
type FaultReport struct {
	// Touched is the number of devices the plan subjects to injection.
	Touched int
	// Injected is the total injected uplink events (Drops + Duplicates +
	// Delays); Blackholes counts expiry windows opened.
	Injected   uint64
	Drops      uint64
	Duplicates uint64
	Delays     uint64
	Blackholes uint64
	// Crashes executed and the frames stranded in crashed shards' queues
	// (all of which the restarts must replay).
	Crashes       int
	QueuedAtCrash int
	// TEEFaults is devices that hit the transient TEE provisioning error.
	TEEFaults int
	// Restarts/Recovered/DuplicatesDropped are the shard-side totals:
	// worker-pool restarts, stranded frames replayed to completion, and
	// injected duplicates dropped by (device, seq) dedup.
	Restarts          uint64
	Recovered         uint64
	DuplicatesDropped uint64
	// Expired is frames the device retry layer explicitly gave up on.
	Expired int
	// Retries/RetryRecovered are the device-side totals: individual retry
	// attempts and frames that landed after at least one retry.
	Retries        uint64
	RetryRecovered uint64
	// TouchedDevices lists the touched device indices, sorted — the set
	// outside which the run must be indistinguishable from fault-free.
	TouchedDevices []int
}

// faultDriver holds the run-time chaos state: the compiled plan, the
// crash schedule (completion-count thresholds, fired inline on whichever
// device worker crosses them — deliberately concurrent with live
// traffic), and the aggregated device-side retry counters.
type faultDriver struct {
	plan   *fault.Plan
	router *cloud.Router
	spec   *FaultSpec
	shards int
	sup    *cloud.Supervisor

	mu        sync.Mutex
	completed int
	points    []int // remaining crash thresholds, ascending
	nextShard int
	crashed   int
	queued    int
	teeFaults int
	retry     core.RetryStats
}

// newFaultDriver compiles the spec into a plan over the full population
// (base + joiners) and installs the run-long slow shard, if any.
func newFaultDriver(cfg Config, router *cloud.Router, totalDevices int) (*faultDriver, error) {
	spec := cfg.Faults
	plan, err := fault.NewPlan(fault.PlanConfig{
		Devices:       totalDevices,
		TouchFraction: spec.TouchFraction,
		DropRate:      spec.DropRate,
		DuplicateRate: spec.DuplicateRate,
		DelayRate:     spec.DelayRate,
		ExpireRate:    spec.ExpireRate,
		DelayCycles:   spec.DelayCycles,
		Attempts:      spec.attempts(),
		SlowFraction:  spec.SlowFraction,
		SlowCycles:    spec.SlowCycles,
		TEEFraction:   spec.TEEFraction,
		TEEPenalty:    spec.TEEPenalty,
		Crashes:       spec.Crashes,
		Seed:          spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	fd := &faultDriver{
		plan:   plan,
		router: router,
		spec:   spec,
		shards: cfg.Shards,
		points: plan.CrashPoints(),
	}
	if spec.SlowShard > 0 {
		router.SlowShard(fmt.Sprintf("shard-%02d", spec.SlowShard-1), spec.SlowServe)
	}
	return fd, nil
}

// supervise attaches the shard supervisor; crash and restart events land
// in the tracer's anomaly log (first of each kind, with a flight-recorder
// snapshot). The caller closes the returned supervisor after the run.
func (fd *faultDriver) supervise(workers int, tracer *obs.Tracer) *cloud.Supervisor {
	fd.sup = fd.router.Supervise(workers, func(e cloud.SupervisorEvent) {
		tracer.Anomaly(e.Kind, fmt.Sprintf("%s: %d queued frames to replay", e.Shard, e.Queued))
	})
	return fd.sup
}

// settle drains pending supervision work so shard stats are final before
// the run aggregates them (Close is idempotent; the deferred Close in
// Run is then a no-op).
func (fd *faultDriver) settle() {
	if fd.sup != nil {
		fd.sup.Close()
	}
}

// noteDone counts one completed device and fires any crash whose
// threshold was crossed — outside the driver lock, so a blocking Crash
// never stalls the counters. Crash targets rotate over the founding
// shards; a target that has left the ring (drained) is skipped.
func (fd *faultDriver) noteDone() {
	fd.mu.Lock()
	fd.completed++
	fire := 0
	for len(fd.points) > 0 && fd.completed >= fd.points[0] {
		fd.points = fd.points[1:]
		fire++
	}
	first := fd.nextShard
	fd.nextShard += fire
	fd.mu.Unlock()
	for k := 0; k < fire; k++ {
		name := fmt.Sprintf("shard-%02d", (first+k)%fd.shards)
		if queued, ok := fd.router.CrashShard(name); ok {
			fd.mu.Lock()
			fd.crashed++
			fd.queued += queued
			fd.mu.Unlock()
		}
	}
}

// noteTEE counts one transient TEE provisioning fault.
func (fd *faultDriver) noteTEE() {
	fd.mu.Lock()
	fd.teeFaults++
	fd.mu.Unlock()
}

// noteRetry folds one device's retry-layer counters into the run total.
func (fd *faultDriver) noteRetry(s core.RetryStats) {
	fd.mu.Lock()
	fd.retry.Deliveries += s.Deliveries
	fd.retry.Recovered += s.Recovered
	fd.retry.Retries += s.Retries
	fd.retry.Expired += s.Expired
	fd.retry.BackoffCycles += s.BackoffCycles
	fd.mu.Unlock()
}

// report assembles the FaultReport from the plan's injection counters,
// the driver's crash log, and the result's shard/device aggregates.
func (fd *faultDriver) report(res *Result) *FaultReport {
	st := fd.plan.Stats()
	fd.mu.Lock()
	rep := &FaultReport{
		Touched:        fd.plan.TouchedCount(),
		Injected:       st.Injected(),
		Drops:          st.Drops,
		Duplicates:     st.Duplicates,
		Delays:         st.Delays,
		Blackholes:     st.Blackholes,
		Crashes:        fd.crashed,
		QueuedAtCrash:  fd.queued,
		TEEFaults:      fd.teeFaults,
		Retries:        fd.retry.Retries,
		RetryRecovered: fd.retry.Recovered,
	}
	fd.mu.Unlock()
	for _, s := range res.ShardStats {
		rep.Restarts += s.Restarts
		rep.Recovered += s.Recovered
		rep.DuplicatesDropped += s.DuplicatesDropped
	}
	rep.Expired = res.ExpiredFrames()
	for i := 0; i < fd.plan.Config().Devices; i++ {
		if fd.plan.Touches(i) {
			rep.TouchedDevices = append(rep.TouchedDevices, i)
		}
	}
	return rep
}
