package fleet

import (
	"testing"

	"repro/internal/core"
)

// TestLifecycleRotationInvariant: rotating a fraction of the fleet's
// keys mid-run loses zero frames and leaves every device's audit
// counters — rotated devices included — bit-identical to a static run:
// rotation is a control-plane event, the data plane never notices.
func TestLifecycleRotationInvariant(t *testing.T) {
	base := Config{
		Devices:    24,
		Shards:     2,
		Utterances: 2,
		Frames:     2,
		Seed:       11,
		Attest:     true,
	}
	static, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rotated := base
	rotated.Lifecycle = &LifecycleSpec{RotateFraction: 0.2}
	res, err := Run(rotated)
	if err != nil {
		t.Fatal(err)
	}

	if res.Rotated == 0 {
		t.Fatal("no device rotated")
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames across rotations", res.LostFrames())
	}
	for i := 0; i < base.Devices; i++ {
		if got, want := fingerprint(res.DeviceResults[i]), fingerprint(static.DeviceResults[i]); got != want {
			t.Fatalf("device %d diverged under rotation: %s != %s", i, got, want)
		}
	}
	// Every rotated device re-attested at epoch 1; the rest sit at 0.
	if res.KeyEpochs[1] != res.Rotated {
		t.Fatalf("epoch tally %v, want %d at epoch 1", res.KeyEpochs, res.Rotated)
	}
	if res.KeyEpochs[0] != res.AttestedDevices-res.Rotated {
		t.Fatalf("epoch tally %v for %d attested", res.KeyEpochs, res.AttestedDevices)
	}
}

// TestLifecycleRevocationRejectsProbes: a device revoked mid-run is cut
// off at the frontend within one frame — every post-revocation probe is
// rejected (never shed, never delivered) and lands in the per-shard
// Rejected counters.
func TestLifecycleRevocationRejectsProbes(t *testing.T) {
	res, err := Run(Config{
		Devices:    24,
		Shards:     2,
		Utterances: 2,
		Frames:     2,
		Seed:       11,
		Lifecycle:  &LifecycleSpec{RevokeFraction: 0.25, RevokeProbes: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Revoked == 0 {
		t.Fatal("no device revoked")
	}
	if res.RevokeProbes != res.Revoked*3 {
		t.Fatalf("probes %d for %d revoked devices", res.RevokeProbes, res.Revoked)
	}
	if res.RevokeRejected != res.RevokeProbes {
		t.Fatalf("only %d/%d probes rejected", res.RevokeRejected, res.RevokeProbes)
	}
	if res.RevokeDelivered != 0 {
		t.Fatalf("%d probes reached an endpoint: the gate was bypassed", res.RevokeDelivered)
	}
	var rejected uint64
	for _, s := range res.ShardStats {
		rejected += s.Rejected
	}
	if rejected < uint64(res.RevokeProbes) {
		t.Fatalf("shard Rejected counters %d < %d probes", rejected, res.RevokeProbes)
	}
	// Revoked identities lose their attested state; nothing was lost or
	// silently shed on the way. (Baseline doorbells never uplink, so
	// they never attest and sit outside both tallies.)
	attesting := res.Config.Devices
	if g := res.Groups[GroupKey{Kind: core.DeviceDoorbell, Mode: core.ModeBaseline}]; g != nil {
		attesting -= g.Devices
	}
	if res.AttestedDevices != attesting-res.Revoked {
		t.Fatalf("attested %d of %d attesting with %d revoked", res.AttestedDevices, attesting, res.Revoked)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames", res.LostFrames())
	}
}

// TestFederatedFleetRoutesByTenant: with Federate on, every tenant's
// verifier attests exactly its own stripe of the population, the tier
// still loses nothing, and rogue (unlabelled) traffic is rejected by
// the federation's admit-nothing fallback.
func TestFederatedFleetRoutesByTenant(t *testing.T) {
	res, err := Run(Config{
		Devices:    24,
		Shards:     2,
		Utterances: 2,
		Frames:     2,
		Seed:       11,
		Tenants:    3,
		Federate:   true,
		Rogues:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TenantAttested) != 3 {
		t.Fatalf("tenant tallies: %v", res.TenantAttested)
	}
	sum := 0
	for tenant, n := range res.TenantAttested {
		if n == 0 {
			t.Fatalf("tenant %s attested nothing: %v", tenant, res.TenantAttested)
		}
		sum += n
	}
	if sum != res.AttestedDevices {
		t.Fatalf("tenant tallies sum to %d, attested %d", sum, res.AttestedDevices)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames", res.LostFrames())
	}
	if res.RogueRejected != res.RogueAttempts || res.UnattestedIngested != 0 {
		t.Fatalf("rogues: %d/%d rejected, %d ingested",
			res.RogueRejected, res.RogueAttempts, res.UnattestedIngested)
	}
	// A federated run is behaviourally identical to a single-root run:
	// per-device audits do not depend on how trust is partitioned.
	single := res.Config
	single.Federate = false
	single.Rogues = 0
	sres, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Config.Devices; i++ {
		if got, want := fingerprint(res.DeviceResults[i]), fingerprint(sres.DeviceResults[i]); got != want {
			t.Fatalf("device %d diverged under federation: %s != %s", i, got, want)
		}
	}
}

// TestLifecycleWithChurnAndRollout: the full stack at once — rotation
// and revocation riding a churned, federated, rolling-out fleet — keeps
// the frame-conservation invariant and converges the rollout.
func TestLifecycleWithChurnAndRollout(t *testing.T) {
	res, err := Run(Config{
		Devices:    24,
		Shards:     2,
		Utterances: 2,
		Frames:     2,
		Seed:       11,
		Tenants:    2,
		Federate:   true,
		Rollout:    &RolloutSpec{CanaryFraction: 0.2},
		Churn:      &ChurnSpec{JoinFraction: 0.2, LeaveFraction: 0.2},
		Lifecycle:  &LifecycleSpec{RotateFraction: 0.2, RevokeFraction: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostFrames() != 0 {
		t.Fatalf("lost %d frames", res.LostFrames())
	}
	if res.Rotated == 0 || res.Revoked == 0 {
		t.Fatalf("lifecycle inactive: rotated %d, revoked %d", res.Rotated, res.Revoked)
	}
	if res.RevokeRejected != res.RevokeProbes {
		t.Fatalf("probes: %d/%d rejected", res.RevokeRejected, res.RevokeProbes)
	}
	if res.Rollout == nil || !res.Rollout.Converged {
		t.Fatalf("rollout did not converge: %+v", res.Rollout)
	}
}
