package fleet

// Cross-device scheduler wiring: SchedSpec turns the per-device classify
// stage of every secure-filter speaker into a submission to one shared
// internal/sched scheduler. The fleet owns the per-model-version shared
// classifiers (bit-identical to the ones each device would have built:
// same memoized TrainClassifier weights, same architecture and vocabulary),
// wires the ingest tier's queue utilization in as the scheduler's
// backpressure gauge, and folds the scheduler's flush statistics into the
// run result.

import (
	"fmt"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/ml/classify"
	"repro/internal/sched"
	"repro/internal/sensitive"
	"repro/internal/tz"
)

// SchedSpec enables the shared cross-device TEE inference scheduler.
// Nil keeps the per-device classify path.
type SchedSpec struct {
	// Batch is the cross-device flush size (items per shared forward
	// pass); default core.MaxBatch. Requesting more than core.MaxBatch
	// is ErrBadConfig — the cap is surfaced, never silently applied.
	Batch int
	// MaxAge is the deadline in virtual cycles a queued utterance may
	// wait before its queue flushes regardless of occupancy; default
	// sched.DefaultMaxAge.
	MaxAge tz.Cycles
	// Workers bounds concurrent shared forward passes; default
	// sched.DefaultWorkers.
	Workers int
}

func (s *SchedSpec) fillDefaults(deviceBatch int) error {
	if s.Batch == 0 {
		s.Batch = core.MaxBatch
	}
	if s.Batch < 0 || s.Batch > core.MaxBatch {
		return fmt.Errorf("%w: scheduler batch %d (core.MaxBatch is %d)",
			ErrBadConfig, s.Batch, core.MaxBatch)
	}
	if deviceBatch > s.Batch {
		return fmt.Errorf("%w: device batch %d exceeds scheduler batch %d (a device's queue must fit one flush)",
			ErrBadConfig, deviceBatch, s.Batch)
	}
	if s.MaxAge < 0 {
		return fmt.Errorf("%w: scheduler max age %d", ErrBadConfig, s.MaxAge)
	}
	if s.MaxAge == 0 {
		s.MaxAge = sched.DefaultMaxAge
	}
	if s.Workers < 0 {
		return fmt.Errorf("%w: %d scheduler workers", ErrBadConfig, s.Workers)
	}
	if s.Workers == 0 {
		s.Workers = sched.DefaultWorkers
	}
	return nil
}

// SchedReport summarizes the scheduler's behavior over one run.
type SchedReport struct {
	// Batch and MaxAge echo the effective scheduler config.
	Batch  int
	MaxAge tz.Cycles
	// Flushes tallies flush count by reason (full/age/idle/drain).
	Flushes map[string]uint64
	// Batches and Items are totals; MeanOccupancy = Items/Batches over
	// every flush, end-of-run drain flushes (size 0–1) included — which
	// understates steady-state occupancy. MeanOccupancySteady excludes
	// the drain tail (DrainBatches flushes carrying DrainItems items) and
	// is the figure to compare across scheduling modes; it falls back to
	// the raw mean when a run was all drain (nothing ever flushed on
	// full/age/idle).
	Batches             uint64
	Items               uint64
	MeanOccupancy       float64
	MeanOccupancySteady float64
	DrainBatches        uint64
	DrainItems          uint64
	MaxOccupancy        int
	// ItemsByVersion splits classified items per model version — a
	// rollout's canary cohort batches separately from the stable cohort.
	ItemsByVersion map[uint64]uint64
	// MixedVersionFlushes must be 0: no flush ever spans model versions.
	MixedVersionFlushes uint64
	// PressureFlushes counts deadline flushes cut early because the
	// ingest tier's queue utilization was above the admission policy's
	// high-water mark.
	PressureFlushes uint64
}

// versionClassifier is one shared per-version classifier. PredictBatch
// mutates layer activation state, so concurrent flushes of the same
// version serialize on the slot lock (flushes of different versions run
// in parallel).
type versionClassifier struct {
	mu  sync.Mutex
	clf *classify.Classifier
}

// schedControl owns the run's scheduler: the executor's per-version
// shared classifiers and the core.ClassifyService adapter devices submit
// through.
type schedControl struct {
	scheduler *sched.Scheduler
	vocab     *sensitive.Vocabulary

	mu    sync.Mutex
	seeds map[uint64]uint64 // model version -> model seed
	clfs  map[uint64]*versionClassifier
}

// newSchedControl builds the scheduler for one run. Version seeds mirror
// provisioning exactly: the base population's classifier comes from the
// root seed (versions 0 and 1), and a staged rollout's target pack
// registers its own seed — TrainClassifier memoizes, so these are the
// same weights the attestState packs carry.
func newSchedControl(cfg Config, st *attestState, shards []*cloud.Shard) (*schedControl, error) {
	sc := &schedControl{
		vocab: sensitive.NewVocabulary(),
		seeds: map[uint64]uint64{0: cfg.Seed, 1: cfg.Seed},
		clfs:  make(map[uint64]*versionClassifier),
	}
	if st != nil && st.rollout != nil {
		sc.seeds[st.next.Version] = st.next.ModelSeed
	}
	// Backpressure gauge: the worst bulk-lane queue utilization across
	// the ingest tier, the same signal the admission policy sheds on.
	pressure := func() float64 {
		worst := 0.0
		for _, s := range shards {
			if u := s.Utilization(); u > worst {
				worst = u
			}
		}
		return worst
	}
	s, err := sched.New(sched.Config{
		Batch:     cfg.Sched.Batch,
		MaxAge:    cfg.Sched.MaxAge,
		Workers:   cfg.Sched.Workers,
		Pressure:  pressure,
		HighWater: cloud.DefaultHighWater,
	}, sc.execute)
	if err != nil {
		return nil, err
	}
	sc.scheduler = s
	return sc, nil
}

// classifierFor returns (building on first use) the shared classifier
// for a model version. The build hits the memoized TrainClassifier
// cache Pretrain warmed.
func (sc *schedControl) classifierFor(version uint64) (*versionClassifier, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if vc, ok := sc.clfs[version]; ok {
		return vc, nil
	}
	seed, ok := sc.seeds[version]
	if !ok {
		return nil, fmt.Errorf("fleet sched: no model provisioned for version %d", version)
	}
	clf, err := core.TrainClassifier(classify.ArchCNN, sc.vocab, seed, 8)
	if err != nil {
		return nil, fmt.Errorf("fleet sched: version %d classifier: %w", version, err)
	}
	vc := &versionClassifier{clf: clf}
	sc.clfs[version] = vc
	return vc, nil
}

// execute is the scheduler's executor: one shared forward pass over a
// single version's flush, charged at the same 4 MACs/cycle the
// per-device TA path charges.
func (sc *schedControl) execute(version uint64, items [][]int) ([]bool, tz.Cycles, error) {
	vc, err := sc.classifierFor(version)
	if err != nil {
		return nil, 0, err
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	batch := make([][]float32, len(items))
	for i, toks := range items {
		batch[i] = vc.clf.TokensToFeatures(toks)
	}
	classes, err := vc.clf.PredictBatch(batch)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet sched classify: %w", err)
	}
	flagged := make([]bool, len(classes))
	for i, cls := range classes {
		flagged[i] = cls == 1
	}
	return flagged, tz.Cycles(vc.clf.EstimateMACs() * len(items) / 4), nil
}

// ClassifyBatch implements core.ClassifyService: the adapter devices
// submit their encoded tokens through.
func (sc *schedControl) ClassifyBatch(req core.ClassifyRequest) (core.ClassifyResponse, error) {
	resp, err := sc.scheduler.Classify(sched.Request{
		DeviceID: req.DeviceID,
		Version:  req.ModelVersion,
		Items:    req.Tokens,
		Now:      req.Now,
	})
	if err != nil {
		return core.ClassifyResponse{}, err
	}
	return core.ClassifyResponse{
		Flagged:   resp.Flagged,
		Wait:      resp.Wait,
		Occupancy: resp.Occupancy,
	}, nil
}

// report drains the scheduler and snapshots its statistics.
func (sc *schedControl) report(spec *SchedSpec) *SchedReport {
	st := sc.scheduler.Stats()
	rep := &SchedReport{
		Batch:               spec.Batch,
		MaxAge:              spec.MaxAge,
		Flushes:             st.Flushes,
		Batches:             st.Batches,
		Items:               st.Items,
		DrainBatches:        st.DrainBatches,
		DrainItems:          st.DrainItems,
		MaxOccupancy:        st.MaxOccupancy,
		ItemsByVersion:      st.ItemsByVersion,
		MixedVersionFlushes: st.MixedVersionFlushes,
		PressureFlushes:     st.PressureFlushes,
	}
	if st.Batches > 0 {
		rep.MeanOccupancy = float64(st.Items) / float64(st.Batches)
		rep.MeanOccupancySteady = rep.MeanOccupancy
	}
	if steady := st.Batches - st.DrainBatches; steady > 0 {
		rep.MeanOccupancySteady = float64(st.Items-st.DrainItems) / float64(steady)
	}
	return rep
}
