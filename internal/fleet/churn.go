package fleet

// Elastic fleet churn. The paper's evaluation assumes a fixed device
// population; a production fleet never has one — devices join (new
// installs), leave (power-off, resets, decommissioning) and the ingest
// tier itself is rebalanced under them. Config.Churn drives both sides
// of that elasticity in one run: joiners are extra devices that arrive
// while the base population is mid-workload and run the *full*
// provision → attest → handshake flow against the verifier's state at
// join time (so a joiner arriving after a rollout opened is provisioned
// to, and must attest at, the raised minimum version), and leavers are
// base-population devices that depart early — they process part of their
// workload, then release cleanly: their provider-side audit is folded
// into the run's accounting, their endpoint leaves the ring, and their
// attested session is released so later frames under their identity
// would be rejected.
//
// Config.Rebalance schedules the tier-side churn: at a configurable
// point in the run, fresh (optionally weighted) shards join the ring
// and/or a founding shard drains — while devices are still processing,
// which is exactly the hand-off the cloud.Router guarantees is lossless.
//
// The invariant all of this preserves (E12, TestChurnInvariant): a
// device that does not churn produces bit-identical results — audit
// counters included — whether the fleet around it churned or not.

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
)

// ChurnSpec drives mid-run population churn.
type ChurnSpec struct {
	// JoinFraction adds ceil(JoinFraction × Devices) joiners: devices
	// that arrive while the base population is mid-run and go through
	// the full provision/attest/handshake flow on arrival.
	JoinFraction float64
	// LeaveFraction picks ceil(LeaveFraction × Devices) base devices to
	// depart early: each processes LeaveAfter of its workload, then
	// deregisters from the ring and releases its attested session.
	LeaveFraction float64
	// LeaveAfter is the fraction of a leaver's workload processed before
	// departure (default 0.5; at least one item is always processed).
	LeaveAfter float64
	// ArrivalSeed seeds joiner arrival placement and leaver selection
	// (0 = derived from the root seed via core.SaltChurn).
	ArrivalSeed uint64
}

func (c *ChurnSpec) fillDefaults(root uint64) error {
	if c.JoinFraction < 0 || c.JoinFraction > 1 ||
		c.LeaveFraction < 0 || c.LeaveFraction > 1 {
		return fmt.Errorf("%w: churn fractions %g/%g", ErrBadConfig, c.JoinFraction, c.LeaveFraction)
	}
	if c.LeaveAfter < 0 || c.LeaveAfter > 1 {
		return fmt.Errorf("%w: leave-after %g", ErrBadConfig, c.LeaveAfter)
	}
	if c.LeaveAfter == 0 {
		c.LeaveAfter = 0.5
	}
	if c.ArrivalSeed == 0 {
		c.ArrivalSeed = core.DeriveSeed(root, core.SaltChurn, 0)
	}
	return nil
}

// RebalanceSpec schedules a mid-run ingest-tier rebalance.
type RebalanceSpec struct {
	// AtFraction of completed devices triggers the rebalance
	// (default 0.5).
	AtFraction float64
	// DrainShard is the index of the founding shard to drain at the
	// trigger; -1 disables the drain (the zero value drains shard 0).
	DrainShard int
	// AddShards fresh shards join the ring at the trigger, before any
	// drain, each with ring weight AddWeight (floored at 1).
	AddShards int
	AddWeight int
}

func (r *RebalanceSpec) fillDefaults(shards int) error {
	if r.AtFraction < 0 || r.AtFraction > 1 {
		return fmt.Errorf("%w: rebalance fraction %g", ErrBadConfig, r.AtFraction)
	}
	if r.AtFraction == 0 {
		r.AtFraction = 0.5
	}
	if r.DrainShard >= shards {
		return fmt.Errorf("%w: drain shard %d of %d", ErrBadConfig, r.DrainShard, shards)
	}
	if r.DrainShard < 0 {
		r.DrainShard = -1
	}
	if r.AddShards < 0 {
		return fmt.Errorf("%w: %d added shards", ErrBadConfig, r.AddShards)
	}
	if r.DrainShard >= 0 && r.AddShards == 0 && shards == 1 {
		return fmt.Errorf("%w: draining the only shard", ErrBadConfig)
	}
	if r.AddWeight < 1 {
		r.AddWeight = 1
	}
	return nil
}

// joinCount / leaveCount round the churn fractions up so any nonzero
// rate churns at least one device.
func (c *ChurnSpec) joinCount(devices int) int {
	return int(math.Ceil(c.JoinFraction * float64(devices)))
}

func (c *ChurnSpec) leaveCount(devices int) int {
	n := int(math.Ceil(c.LeaveFraction * float64(devices)))
	if n > devices {
		n = devices
	}
	return n
}

// planJoiners extends the population plan past the base population.
// Identity fields come from the same memberSpec derivation Plan uses,
// keyed on the joiner's global index, so base specs are untouched by
// the extension and every joiner's seed is a function of its index
// alone. Kind and mode continue Plan's interleave cadence (doorbell
// every `stride` indices, speaker modes cycling, counters carried over
// from the base population) with one deliberate difference: Plan caps
// doorbells at the base quota, while joiners have no quota — the
// fraction extends with the population.
func planJoiners(cfg Config, base []core.DeviceSpec) []core.DeviceSpec {
	join := cfg.Churn.joinCount(cfg.Devices)
	if join == 0 {
		return nil
	}
	doorbells := int(float64(cfg.Devices) * cfg.DoorbellFraction)
	stride := cfg.Devices
	if doorbells > 0 {
		stride = cfg.Devices / doorbells
	}
	nSpeaker, nDoorbell := 0, 0
	for i := range base {
		if base[i].Kind == core.DeviceDoorbell {
			nDoorbell++
		} else {
			nSpeaker++
		}
	}
	speakerModes := weightedModes(cfg.Mix)
	dbModes := doorbellModes(cfg.Mix)
	specs := make([]core.DeviceSpec, join)
	for j := range specs {
		i := cfg.Devices + j
		spec := memberSpec(cfg, i)
		if doorbells > 0 && i%stride == 0 {
			spec.Kind = core.DeviceDoorbell
			spec.Mode = dbModes[nDoorbell%len(dbModes)]
			nDoorbell++
		} else {
			spec.Kind = core.DeviceSpeaker
			spec.Mode = speakerModes[nSpeaker%len(speakerModes)]
			nSpeaker++
		}
		specs[j] = spec
	}
	return specs
}

// churnPlan is the run-time churn state: who leaves, when joiners
// arrive, and the accounting for departed endpoints.
type churnPlan struct {
	leaver     map[int]bool
	leaveAfter float64
	arrival    []int // device indices in worker-feed order

	mu       sync.Mutex
	departed cloud.Audit
	left     int
}

// newChurnPlan derives the leaver set and the arrival order from the
// churn spec. Arrival order: base devices keep their index order (their
// results must not depend on churn), with joiners spliced in from the
// one-third mark onward at seeded positions — mid-run arrivals, after
// enough of the base population is in flight for the join to interleave
// with real traffic.
func newChurnPlan(cfg Config, base, join int) *churnPlan {
	p := &churnPlan{
		leaver:     make(map[int]bool),
		leaveAfter: cfg.Churn.LeaveAfter,
		arrival:    make([]int, 0, base+join),
	}
	rng := core.NewRNG(cfg.Churn.ArrivalSeed, core.SaltChurn)
	perm := rng.Perm(base)
	for _, i := range perm[:cfg.Churn.leaveCount(base)] {
		p.leaver[i] = true
	}
	for i := 0; i < base; i++ {
		p.arrival = append(p.arrival, i)
	}
	// Splice joiners into the feed past the one-third mark. Insertion
	// positions are seeded; base relative order is preserved.
	lo := base / 3
	for j := 0; j < join; j++ {
		pos := lo + rng.IntN(len(p.arrival)-lo+1)
		p.arrival = append(p.arrival, 0)
		copy(p.arrival[pos+1:], p.arrival[pos:])
		p.arrival[pos] = base + j
	}
	return p
}

// truncateWorkload clips a leaver's workload to its pre-departure share
// (at least one item: a device that joined processed something).
func (p *churnPlan) truncateWorkload(w core.DeviceWorkload) core.DeviceWorkload {
	clip := func(n int) int {
		k := int(p.leaveAfter*float64(n) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		return k
	}
	if len(w.Utterances) > 0 {
		w.Utterances = w.Utterances[:clip(len(w.Utterances))]
	}
	if len(w.Scenes) > 0 {
		w.Scenes = w.Scenes[:clip(len(w.Scenes))]
	}
	return w
}

// depart folds a leaver's endpoint audit into the run accounting before
// its endpoint leaves the ring (the ring can no longer vouch for it).
func (p *churnPlan) depart(a cloud.Audit) {
	p.mu.Lock()
	p.departed = p.departed.Merge(a)
	p.mu.Unlock()
}

// noteLeft counts one clean departure (endpoint-bearing or not).
func (p *churnPlan) noteLeft() {
	p.mu.Lock()
	p.left++
	p.mu.Unlock()
}

// rebalancer triggers the scheduled ingest-tier rebalance once a target
// number of devices has completed. The trigger runs inline on whichever
// device worker crosses the threshold — deliberately concurrent with the
// rest of the fleet's traffic.
type rebalancer struct {
	spec    RebalanceSpec
	router  *cloud.Router
	cfg     Config
	trigger int

	mu        sync.Mutex
	completed int
	fired     bool
	added     []string
	drained   string
	moved     int
	err       error
}

func newRebalancer(cfg Config, router *cloud.Router, totalDevices int) *rebalancer {
	r := &rebalancer{spec: *cfg.Rebalance, router: router, cfg: cfg}
	r.trigger = int(r.spec.AtFraction * float64(totalDevices))
	if r.trigger < 1 {
		r.trigger = 1
	}
	return r
}

// noteDone counts one completed device and fires the rebalance when the
// threshold is crossed.
func (r *rebalancer) noteDone() {
	r.mu.Lock()
	r.completed++
	fire := !r.fired && r.completed >= r.trigger
	if fire {
		r.fired = true
	}
	r.mu.Unlock()
	if !fire {
		return
	}
	for i := 0; i < r.spec.AddShards; i++ {
		name := fmt.Sprintf("shard-r%02d", i)
		r.router.AddShard(cloud.NewShard(name, r.cfg.ShardWorkers, r.cfg.ShardQueue), r.spec.AddWeight)
		r.mu.Lock()
		r.added = append(r.added, name)
		r.mu.Unlock()
	}
	if r.spec.DrainShard >= 0 {
		name := fmt.Sprintf("shard-%02d", r.spec.DrainShard)
		err := r.router.Drain(name)
		r.mu.Lock()
		if err != nil {
			if r.err == nil {
				r.err = fmt.Errorf("rebalance drain %s: %w", name, err)
			}
		} else {
			r.drained = name
		}
		r.mu.Unlock()
	}
}

// report snapshots what the rebalance did.
func (r *rebalancer) report() *RebalanceReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &RebalanceReport{
		Fired:        r.fired,
		AddedShards:  append([]string(nil), r.added...),
		DrainedShard: r.drained,
	}
}

// RebalanceReport summarizes the scheduled mid-run rebalance.
type RebalanceReport struct {
	// Fired reports whether the trigger point was reached.
	Fired bool
	// AddedShards are the ring names of the shards added at the trigger.
	AddedShards []string
	// DrainedShard is the ring name of the drained shard ("" if none).
	DrainedShard string
}

// tenantName renders the label of billing tenant t.
func tenantName(t int) string { return fmt.Sprintf("tenant-%02d", t) }

// tenantFor stripes device traffic across the configured tenant count —
// the cleartext billing label the fair-share admission policy and the
// per-tenant verifier federation see.
func tenantFor(cfg Config, deviceIndex int) string {
	return tenantName(deviceIndex % cfg.Tenants)
}
