package fleet

// Attestation-lifecycle driver. Enrollment on the PR-3 ingest tier was
// immutable: a device key lived as long as the fleet, and the only way
// to expel a compromised device was to restart everything. The paper's
// edge-to-cloud key-management gap (and the ROADMAP item it left open)
// is exactly this lifecycle: keys must rotate while traffic flows, and a
// compromised device must be cut off *now*, at the frontend, with an
// auditable trail.
//
// Config.Lifecycle drives both events against a live run:
//
//   - Rotation: for a seeded fraction of the population the verifier
//     issues the rotation token right before the device's attested
//     handshake, so the handshake itself lands in the grace window (the
//     device still signs at the old epoch) and the device's whole
//     workload flows while the verifier already expects the next epoch.
//     After the workload the device redeems the token in its TEE
//     (CmdRotateKey: MAC verify, seal epoch, swap signer) and re-attests
//     at the new epoch, closing the window. Zero frames may be lost to
//     any of it.
//
//   - Revocation: a seeded fraction of completed devices is revoked
//     while the rest of the fleet is still processing; probe frames are
//     then fired under each revoked identity and every one must be
//     *rejected* (cloud.ErrRejected wrapping attest.ErrRevoked, counted
//     in ShardStats.Rejected) — never shed, and never delivered.
//
// The invariant E13 pins: none of this changes a single audit counter of
// any device, because rotation and revocation are control-plane events —
// the data plane's frames either flow (rotation) or are rejected before
// an endpoint ever sees them (revocation probes).

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/obs"
)

// LifecycleSpec drives mid-run key rotation and revocation.
type LifecycleSpec struct {
	// RotateFraction of the endpoint-bearing population has its
	// attestation key rotated mid-run (token issued before the
	// handshake, redeemed in-TEE after the workload, re-attested at the
	// new epoch).
	RotateFraction float64
	// RevokeFraction of the endpoint-bearing population is revoked right
	// after completing its workload, while the rest of the fleet is
	// still processing.
	RevokeFraction float64
	// RevokeProbes frames are fired under each revoked identity; every
	// one must be rejected at the frontend. Default 2.
	RevokeProbes int
	// SelectSeed seeds rotation/revocation target selection (0 = derived
	// from the root seed via core.SaltLifecycle).
	SelectSeed uint64
}

func (l *LifecycleSpec) fillDefaults(root uint64) error {
	if l.RotateFraction < 0 || l.RotateFraction > 1 ||
		l.RevokeFraction < 0 || l.RevokeFraction > 1 {
		return fmt.Errorf("%w: lifecycle fractions %g/%g", ErrBadConfig, l.RotateFraction, l.RevokeFraction)
	}
	if l.RotateFraction+l.RevokeFraction > 1 {
		return fmt.Errorf("%w: lifecycle fractions sum to %g", ErrBadConfig, l.RotateFraction+l.RevokeFraction)
	}
	if l.RevokeProbes <= 0 {
		l.RevokeProbes = 2
	}
	if l.SelectSeed == 0 {
		l.SelectSeed = core.DeriveSeed(root, core.SaltLifecycle, 0)
	}
	return nil
}

// lifecyclePlan is the run-time lifecycle state: which base devices
// rotate and which are revoked, plus the probe accounting.
type lifecyclePlan struct {
	rotate map[int]bool
	revoke map[int]bool
	probes int

	mu             sync.Mutex
	rotated        int
	revoked        int
	probeAttempts  int
	probeRejected  int
	probeDelivered int // frames that reached an endpoint after a revoke: must stay 0
}

// newLifecyclePlan selects disjoint rotation and revocation target sets
// from the endpoint-bearing base population (baseline doorbells never
// register an endpoint, so there is no ingest path to rotate under or
// revoke from). Selection is a seeded permutation: deterministic per
// root seed, independent of worker scheduling.
func newLifecyclePlan(cfg Config, specs []core.DeviceSpec) *lifecyclePlan {
	p := &lifecyclePlan{
		rotate: make(map[int]bool),
		revoke: make(map[int]bool),
		probes: cfg.Lifecycle.RevokeProbes,
	}
	eligible := make([]int, 0, len(specs))
	for i := range specs {
		if specs[i].Kind == core.DeviceDoorbell && specs[i].Mode == core.ModeBaseline {
			continue
		}
		eligible = append(eligible, i)
	}
	rng := core.NewRNG(cfg.Lifecycle.SelectSeed, core.SaltLifecycle)
	perm := rng.Perm(len(eligible))
	nRotate := int(cfg.Lifecycle.RotateFraction*float64(len(eligible)) + 0.5)
	nRevoke := int(cfg.Lifecycle.RevokeFraction*float64(len(eligible)) + 0.5)
	if nRotate+nRevoke > len(eligible) {
		nRevoke = len(eligible) - nRotate
	}
	for _, j := range perm[:nRotate] {
		p.rotate[eligible[j]] = true
	}
	for _, j := range perm[nRotate : nRotate+nRevoke] {
		p.revoke[eligible[j]] = true
	}
	return p
}

// noteRotated counts one completed redeem + re-attest.
func (p *lifecyclePlan) noteRotated() {
	p.mu.Lock()
	p.rotated++
	p.mu.Unlock()
}

// probeRevoked revokes the device on its authority and fires the probe
// frames that must all be rejected. The rejection must be the admission
// gate's (ErrRejected, counted in ShardStats.Rejected): a shed or — far
// worse — a delivery is a gate bypass.
func (p *lifecyclePlan) probeRevoked(r *runner, id, tenant string, meta cloud.FrameMeta, tc *obs.TraceContext) {
	r.st.authority(tenant).Revoke(id, "lifecycle drill: compromised device")
	r.tracer.Verb(obs.VerbRevoke)
	// The first revocation of the run dumps every shard's flight
	// recorder: the admission timeline that led up to the cut-off.
	r.tracer.Anomaly("first-revocation", fmt.Sprintf("device %s revoked", id))
	p.mu.Lock()
	p.revoked++
	p.mu.Unlock()
	for j := 0; j < p.probes; j++ {
		_, err := r.router.IngestMeta(id, []byte("post-revocation probe"), meta)
		// Probes are observed off-device, so their spans carry no device
		// virtual time — StageAdmit with zero start and duration, one
		// terminal verdict per probe, mirroring the accounting below.
		if tc.Enabled() {
			tc.NextItem()
			switch {
			case err == nil:
				tc.Emit(obs.StageAdmit, obs.VerdictDelivered, 0, 0, 0, 0)
			case errors.Is(err, cloud.ErrShed):
				tc.Emit(obs.StageAdmit, obs.VerdictShed, 0, 0, 0, 0)
			default:
				tc.Emit(obs.StageAdmit, cloud.RejectVerdict(err), 0, 0, 0, 0)
			}
		}
		p.mu.Lock()
		p.probeAttempts++
		switch {
		case err == nil:
			p.probeDelivered++
		case errors.Is(err, cloud.ErrRejected) && !errors.Is(err, cloud.ErrShed):
			p.probeRejected++
		}
		p.mu.Unlock()
	}
}

// fill copies the plan's accounting into the run result.
func (p *lifecyclePlan) fill(res *Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	res.Rotated = p.rotated
	res.Revoked = p.revoked
	res.RevokeProbes = p.probeAttempts
	res.RevokeRejected = p.probeRejected
	res.RevokeDelivered = p.probeDelivered
}
