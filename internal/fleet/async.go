package fleet

// Event-driven device pipeline: instead of one goroutine per device that
// runs capture → transcribe → classify → uplink synchronously (parking in
// sched.Classify while a shared flush forms), device state lives in a
// task table and a bounded executor pool drives it. A scheduled
// secure-filter speaker's run is sliced at the classify stage
// (core.StagedSession): the executor captures and transcribes a group,
// submits each encoded utterance as its own single-item asynchronous
// scheduler enqueue, and releases the executor; the last completion
// callback re-enqueues the task and a (possibly different) executor
// resumes the group — charging the wait, relaying survivors — and
// captures the next one. Every other device class runs its whole
// pipeline as one executor step.
//
// Two properties fall out. Scale: a 10⁴–10⁵-device population costs
// Executors goroutines plus the scheduler's workers, not one goroutine
// per device, and at most ~Executors + a flush worth of device pipelines
// are constructed at once. Coalescing: submissions are true concurrent
// single-item enqueues, so scheduler occupancy comes from cross-device
// batching rather than one device's whole queue entering as a multi-item
// request. Audits stay bit-identical to the synchronous path — the
// engine moves only where waiting happens, never what is computed.

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tz"
)

// AsyncSpec enables the event-driven device pipeline. Nil keeps the
// goroutine-per-device worker pool.
type AsyncSpec struct {
	// Executors bounds the pool driving device tasks; default GOMAXPROCS.
	Executors int
}

func (a *AsyncSpec) fillDefaults() error {
	if a.Executors < 0 {
		return fmt.Errorf("%w: %d async executors", ErrBadConfig, a.Executors)
	}
	if a.Executors == 0 {
		a.Executors = runtime.GOMAXPROCS(0)
	}
	return nil
}

// AsyncReport summarizes the event-driven engine's execution.
type AsyncReport struct {
	// Executors is the pool size that drove the run.
	Executors int
	// Steps counts executor dispatches (task admissions + resumptions).
	Steps uint64
	// Parks counts utterance groups parked awaiting a shared classify
	// flush. Zero when no scheduler is wired.
	Parks uint64
	// PeakLive is the most device pipelines concurrently constructed —
	// the honest memory figure for large populations (it stays near
	// Executors plus a flush's worth of parked devices, not Devices).
	PeakLive int
}

// devTask is one device's table entry: its pipeline context plus the
// staged-session state a parked classify group needs to resume.
type devTask struct {
	idx int
	dc  *devCtx
	st  *core.StagedSession
	pg  *core.PendingGroup

	// Per-parked-group completion state, guarded by the engine mutex:
	// the j-th submission's callback fills slot j; remaining counts
	// outstanding callbacks plus one submitter hold.
	flags     []bool
	occs      []int
	waits     []tz.Cycles
	remaining int
	failed    error
}

// asyncEngine drives the task table with a bounded executor pool.
type asyncEngine struct {
	r     *runner
	specs []core.DeviceSpec
	order []int
	execs int

	mu       sync.Mutex
	cond     *sync.Cond
	ready    []*devTask
	next     int // admission cursor into order
	active   int // tasks admitted and not yet finished
	peak     int
	steps    uint64
	parks    uint64
	firstErr error
}

func newAsyncEngine(r *runner, specs []core.DeviceSpec, order []int) *asyncEngine {
	e := &asyncEngine{r: r, specs: specs, order: order, execs: r.cfg.Async.Executors}
	if e.execs > len(order) && len(order) > 0 {
		e.execs = len(order)
	}
	if e.execs < 1 {
		e.execs = 1
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// run blocks until every admitted task has finished (after an error, no
// new tasks are admitted but in-flight ones complete, so no scheduler
// entry is ever stranded) and returns the first error.
func (e *asyncEngine) run() error {
	var wg sync.WaitGroup
	wg.Add(e.execs)
	for i := 0; i < e.execs; i++ {
		go func() {
			defer wg.Done()
			for {
				t := e.nextTask()
				if t == nil {
					return
				}
				e.step(t)
			}
		}()
	}
	wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstErr
}

// nextTask returns the next runnable task — a resumed parked task first,
// else a fresh admission — or nil when the run is over. With only parked
// tasks outstanding it drives the scheduler's idle rule (NotifyIdle)
// before sleeping: the executors collectively assert nothing new can
// arrive, which is the event-driven analogue of every producer being
// blocked.
func (e *asyncEngine) nextTask() *devTask {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if len(e.ready) > 0 {
			t := e.ready[0]
			e.ready = e.ready[1:]
			e.steps++
			return t
		}
		if e.firstErr == nil && e.next < len(e.order) {
			idx := e.order[e.next]
			e.next++
			e.active++
			if e.active > e.peak {
				e.peak = e.active
			}
			e.steps++
			return &devTask{idx: idx}
		}
		if e.active == 0 {
			return nil
		}
		if e.r.sched != nil {
			// Outstanding tasks are parked. NotifyIdle cuts the oldest
			// queue's deadline flush if nothing is in flight; either way a
			// completion will enqueue work and broadcast. Probe off the
			// engine lock, then re-check state before sleeping so the
			// wakeup cannot be lost.
			e.mu.Unlock()
			cut := e.r.sched.scheduler.NotifyIdle()
			pending := e.r.sched.scheduler.Pending() > 0
			e.mu.Lock()
			if len(e.ready) > 0 || e.active == 0 || cut {
				continue
			}
			if pending {
				// Entries are queued but could not be cut: a flush is in
				// flight or its completions are still being delivered. A
				// "full" flush cut mid-interleave can carry only partial
				// groups (e.g. A0,B0,A1,B1 with A2,B2 left queued), whose
				// callbacks drain no task — so no broadcast is guaranteed
				// to follow. Sleeping here could be forever; keep
				// re-probing until the leftovers are cut or a callback
				// lands. The spin is bounded by the in-flight flush.
				e.mu.Unlock()
				runtime.Gosched()
				e.mu.Lock()
				continue
			}
			// Pending was zero: every outstanding entry rides an in-flight
			// flush, so some task is guaranteed to drain and broadcast.
		}
		e.cond.Wait()
	}
}

// step advances one task: admission (setup, then either a full
// synchronous run or the first staged capture) or resumption (feed the
// shared classifier's verdicts back, capture the next group).
func (e *asyncEngine) step(t *devTask) {
	if t.dc == nil {
		spec := e.specs[t.idx]
		dc, err := e.r.setupOne(spec, t.idx)
		if err != nil {
			e.finish(t, err)
			return
		}
		t.dc = dc
		// Parkable work is exactly the shared-classify population:
		// everything else has no external stage to park on and runs its
		// whole pipeline as one executor step (still table-driven — no
		// goroutine outlives the step).
		if !dc.spec.SharedClassify || dc.d.Speaker == nil {
			res, err := dc.d.Run(dc.w)
			if err != nil {
				e.finish(t, fmt.Errorf("device %d: %w", t.idx, err))
				return
			}
			e.finish(t, e.r.finishOne(dc, res))
			return
		}
		st, err := dc.d.Speaker.BeginStagedSession(dc.w.Utterances, dc.spec.Batch)
		if err != nil {
			e.finish(t, fmt.Errorf("device %d: %w", t.idx, err))
			return
		}
		t.st = st
		e.captureOrFinish(t)
		return
	}
	// Resumption: the parked group's verdicts are in. The group's shared
	// passes overlapped in virtual time — the classification is done when
	// the last one returns, so the group waits the max, mirroring the
	// single multi-item request of the synchronous path.
	if t.failed != nil {
		t.st.Abort()
		e.finish(t, fmt.Errorf("device %d classify: %w", t.idx, t.failed))
		return
	}
	var wait tz.Cycles
	for _, w := range t.waits {
		if w > wait {
			wait = w
		}
	}
	if err := t.st.ResumeGroup(t.pg, t.flags, t.occs, wait); err != nil {
		t.st.Abort()
		e.finish(t, fmt.Errorf("device %d: %w", t.idx, err))
		return
	}
	e.captureOrFinish(t)
}

// captureOrFinish captures the task's next utterance group and parks it
// on the scheduler, or — when the workload is exhausted — finalizes the
// session and runs the device's finish flow.
func (e *asyncEngine) captureOrFinish(t *devTask) {
	pg, err := t.st.CaptureGroup()
	if err != nil {
		t.st.Abort()
		e.finish(t, fmt.Errorf("device %d: %w", t.idx, err))
		return
	}
	if pg == nil {
		res, err := t.st.Finish()
		if err != nil {
			e.finish(t, fmt.Errorf("device %d: %w", t.idx, err))
			return
		}
		e.finish(t, e.r.finishOne(t.dc, &core.DeviceResult{Spec: t.dc.spec, Session: res}))
		return
	}
	n := len(pg.Tokens)
	t.pg = pg
	t.flags = make([]bool, n)
	t.occs = make([]int, n)
	t.waits = make([]tz.Cycles, n)
	t.failed = nil
	e.mu.Lock()
	// n callbacks plus the submitter hold: the task re-enqueues only
	// when the count drains, so an early callback cannot race the
	// executor still submitting the rest of the group.
	t.remaining = n + 1
	e.parks++
	e.mu.Unlock()
	for j := 0; j < n; j++ {
		j := j
		err := e.r.sched.scheduler.SubmitAsync(sched.Request{
			DeviceID: t.dc.id,
			Version:  pg.Version,
			Items:    [][]int{pg.Tokens[j]},
			Now:      pg.Now,
		}, func(resp sched.Response, err error) {
			e.mu.Lock()
			if err != nil {
				t.failed = err
			} else {
				t.flags[j] = resp.Flagged[0]
				t.occs[j] = resp.Occupancy
				t.waits[j] = resp.Wait
			}
			e.release(t, 1)
			e.mu.Unlock()
		})
		if err != nil {
			// Submission failed: the unsubmitted tail (this item included)
			// will never see callbacks.
			e.mu.Lock()
			t.failed = err
			e.release(t, n-j)
			e.mu.Unlock()
			break
		}
	}
	e.mu.Lock()
	e.release(t, 1) // submitter hold
	e.mu.Unlock()
}

// release drops k completion holds from a parked task and re-enqueues it
// when the count drains. Called with the engine mutex held. It broadcasts
// on every call, not only when a task drains: a flush completion that
// delivers only partial groups readies no task, but sleeping executors
// must still wake to re-probe NotifyIdle for the leftover entries the cut
// stranded below the batch size.
func (e *asyncEngine) release(t *devTask, k int) {
	t.remaining -= k
	if t.remaining == 0 {
		e.ready = append(e.ready, t)
	}
	e.cond.Broadcast()
}

// finish retires a task: settle its accounting, record the first error,
// and wake executors re-checking the termination condition.
func (e *asyncEngine) finish(t *devTask, err error) {
	if t.dc != nil {
		t.dc.close(e.r)
	}
	e.mu.Lock()
	if err != nil && e.firstErr == nil {
		e.firstErr = err
	}
	e.active--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// report snapshots the engine's counters after run returns.
func (e *asyncEngine) report() *AsyncReport {
	return &AsyncReport{Executors: e.execs, Steps: e.steps, Parks: e.parks, PeakLive: e.peak}
}
