package fleet

// MixSpec: the mode-keyed replacement for the historical positional
// [3]int speaker mix. Weights are named by deployment mode and validated
// against the core.Mode registry, so a new mode (e.g. hybrid-he) joins
// the fleet mix without a silent positional shift.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// MixSpec weights the deployment modes across speakers, keyed by mode.
// A nil/empty spec means the default 1:1:1 over the paper's original
// three modes (hybrid-he is opt-in — the default fleet is unchanged).
type MixSpec map[core.Mode]int

// DefaultMix is the historical 1:1:1 baseline : secure-nofilter :
// secure-filter split.
func DefaultMix() MixSpec {
	return MixSpec{
		core.ModeBaseline:       1,
		core.ModeSecureNoFilter: 1,
		core.ModeSecureFilter:   1,
	}
}

// LegacyMix converts the historical positional form (baseline :
// secure-nofilter : secure-filter) to a MixSpec. The zero value maps to
// nil — "use the default" — exactly as the positional field did.
//
// Deprecated: build a MixSpec keyed by core.Mode directly.
func LegacyMix(mix [3]int) MixSpec {
	if mix == ([3]int{}) {
		return nil
	}
	return MixSpec{
		core.ModeBaseline:       mix[0],
		core.ModeSecureNoFilter: mix[1],
		core.ModeSecureFilter:   mix[2],
	}
}

// String renders the spec in registry order as "baseline=1,..." —
// the same form ParseMix accepts. Zero-weight entries are elided.
func (m MixSpec) String() string {
	parts := make([]string, 0, len(m))
	for _, mode := range core.Modes() {
		if w, ok := m[mode]; ok && w != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", mode, w))
		}
	}
	return strings.Join(parts, ",")
}

// Named returns the spec keyed by mode name in sorted order (snapshot
// form; mode names are stable across releases, positions are not).
func (m MixSpec) Named() map[string]int {
	out := make(map[string]int, len(m))
	for mode, w := range m {
		out[mode.String()] = w
	}
	return out
}

// validate rejects unknown modes, negative weights and an all-zero mix
// (an empty spec is not validated — fillDefaults replaces it first).
func (m MixSpec) validate() error {
	registered := core.Modes()
	// Deterministic error selection: check modes in sorted order so the
	// same bad spec always reports the same violation.
	modes := make([]core.Mode, 0, len(m))
	for mode := range m {
		modes = append(modes, mode)
	}
	sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
	total := 0
	for _, mode := range modes {
		known := false
		for _, r := range registered {
			if mode == r {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("%w: unregistered mode %s in mix", ErrBadConfig, mode)
		}
		if m[mode] < 0 {
			return fmt.Errorf("%w: negative mix weight %d for %s", ErrBadConfig, m[mode], mode)
		}
		total += m[mode]
	}
	if total == 0 {
		return fmt.Errorf("%w: mix has no positive weight", ErrBadConfig)
	}
	return nil
}

// ParseMix parses the named mix syntax "baseline=1,secure-filter=2".
// An empty string returns nil (the default mix). Unknown mode names
// report the registered modes; core.ParseMode provides the listing.
func ParseMix(s string) (MixSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	mix := make(MixSpec)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%w: mix entry %q wants mode=weight", ErrBadConfig, part)
		}
		mode, err := core.ParseMode(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("%w: mix: %v", ErrBadConfig, err)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("%w: mix weight %q for %s", ErrBadConfig, val, mode)
		}
		if _, dup := mix[mode]; dup {
			return nil, fmt.Errorf("%w: mix repeats %s", ErrBadConfig, mode)
		}
		mix[mode] = w
	}
	if len(mix) == 0 {
		return nil, nil
	}
	return mix, nil
}

// weightedModes expands the mix into the round-robin cycle Plan deals
// speaker modes from, in mode-registry order (deterministic for any
// map contents).
func weightedModes(mix MixSpec) []core.Mode {
	var out []core.Mode
	for _, mode := range core.Modes() {
		for j := 0; j < mix[mode]; j++ {
			out = append(out, mode)
		}
	}
	return out
}

// doorbellModes is the cycle doorbells are dealt from: always the
// historical baseline/secure-filter alternation (secure-nofilter is
// meaningless for images, and the pairing is pinned regardless of
// speaker weights so existing populations never shift), plus hybrid-he
// when the mix weights it.
func doorbellModes(mix MixSpec) []core.Mode {
	out := []core.Mode{core.ModeBaseline, core.ModeSecureFilter}
	if mix[core.ModeHybridHE] > 0 {
		out = append(out, core.ModeHybridHE)
	}
	return out
}
