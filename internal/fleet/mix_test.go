package fleet

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestParseMixNamed: the named syntax parses into a mode-keyed spec,
// whitespace and entry order are irrelevant, and the empty string means
// "use the default" (nil).
func TestParseMixNamed(t *testing.T) {
	got, err := ParseMix(" hybrid-he=1, baseline=2 ,secure-filter=3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := MixSpec{
		core.ModeBaseline:     2,
		core.ModeSecureFilter: 3,
		core.ModeHybridHE:     1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseMix = %v, want %v", got, want)
	}
	for _, empty := range []string{"", "   ", ","} {
		got, err := ParseMix(empty)
		if err != nil || got != nil {
			t.Fatalf("ParseMix(%q) = %v, %v; want nil, nil", empty, got, err)
		}
	}
}

// TestParseMixErrors: malformed entries, unknown modes, bad weights and
// duplicates are all ErrBadConfig, and the unknown-mode error lists the
// registered modes.
func TestParseMixErrors(t *testing.T) {
	for _, bad := range []string{
		"baseline",              // no '='
		"baseline=",             // empty weight
		"baseline=two",          // non-integer weight
		"he-only=1",             // unknown mode
		"baseline=1,baseline=2", // duplicate
	} {
		if _, err := ParseMix(bad); !errors.Is(err, ErrBadConfig) {
			t.Errorf("ParseMix(%q) = %v, want ErrBadConfig", bad, err)
		}
	}
	_, err := ParseMix("he-only=1")
	for _, m := range core.Modes() {
		if !strings.Contains(err.Error(), m.String()) {
			t.Fatalf("unknown-mode error %q does not list %s", err, m)
		}
	}
}

// TestMixValidate: negative weights, unregistered modes and an all-zero
// spec are rejected; the default passes.
func TestMixValidate(t *testing.T) {
	if err := DefaultMix().validate(); err != nil {
		t.Fatalf("default mix invalid: %v", err)
	}
	for name, bad := range map[string]MixSpec{
		"negative":     {core.ModeBaseline: -1, core.ModeSecureFilter: 1},
		"unregistered": {core.Mode(9): 1},
		"all-zero":     {core.ModeBaseline: 0, core.ModeSecureFilter: 0},
	} {
		if err := bad.validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s mix = %v, want ErrBadConfig", name, err)
		}
	}
}

// TestMixStringRoundTrip: String renders in registry order in the same
// syntax ParseMix accepts, eliding zero weights, and the round trip is
// exact for every registered mode.
func TestMixStringRoundTrip(t *testing.T) {
	spec := MixSpec{}
	for i, m := range core.Modes() {
		spec[m] = i + 1
	}
	s := spec.String()
	back, err := ParseMix(s)
	if err != nil {
		t.Fatalf("ParseMix(%q): %v", s, err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Fatalf("round trip %q = %v, want %v", s, back, spec)
	}
	elided := MixSpec{core.ModeBaseline: 0, core.ModeHybridHE: 2}
	if got, want := elided.String(), "hybrid-he=2"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got, want := DefaultMix().String(), "baseline=1,secure-nofilter=1,secure-filter=1"; got != want {
		t.Fatalf("default mix renders %q, want %q", got, want)
	}
}

// TestLegacyMix: the deprecated positional constructor keys the three
// historical positions correctly and maps the zero value to nil, exactly
// as the old [3]int field's zero value meant "default".
func TestLegacyMix(t *testing.T) {
	if got := LegacyMix([3]int{}); got != nil {
		t.Fatalf("zero legacy mix = %v, want nil", got)
	}
	got := LegacyMix([3]int{3, 0, 7})
	want := MixSpec{
		core.ModeBaseline:       3,
		core.ModeSecureNoFilter: 0,
		core.ModeSecureFilter:   7,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LegacyMix = %v, want %v", got, want)
	}
}

// TestWeightedModesCycle: the default spec expands to the historical
// baseline/secure-nofilter/secure-filter deal cycle (fingerprint
// preservation), and weights repeat modes in registry order.
func TestWeightedModesCycle(t *testing.T) {
	got := weightedModes(DefaultMix())
	want := []core.Mode{core.ModeBaseline, core.ModeSecureNoFilter, core.ModeSecureFilter}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("default cycle %v, want %v", got, want)
	}
	got = weightedModes(MixSpec{core.ModeHybridHE: 1, core.ModeBaseline: 2})
	want = []core.Mode{core.ModeBaseline, core.ModeBaseline, core.ModeHybridHE}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("weighted cycle %v, want %v", got, want)
	}
}

// TestDoorbellModes: doorbells keep the pinned baseline/secure-filter
// alternation regardless of speaker weights, gaining hybrid-he only when
// the mix weights it.
func TestDoorbellModes(t *testing.T) {
	got := doorbellModes(MixSpec{core.ModeSecureFilter: 5})
	want := []core.Mode{core.ModeBaseline, core.ModeSecureFilter}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("doorbell cycle %v, want %v", got, want)
	}
	got = doorbellModes(MixSpec{core.ModeHybridHE: 1})
	want = []core.Mode{core.ModeBaseline, core.ModeSecureFilter, core.ModeHybridHE}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hybrid doorbell cycle %v, want %v", got, want)
	}
}
