// Package tz models an Arm TrustZone machine: the two execution worlds,
// the secure monitor that switches between them (SMC), the TrustZone
// address space controller (TZASC) that carves secure regions out of
// physical memory, and a virtual cycle clock with a calibrated cost model.
//
// The model is deliberately cost-accounted rather than cycle-accurate: every
// architectural event (world switch, SMC dispatch, cache maintenance,
// syscall, byte copy) advances a shared virtual clock by a configurable
// number of cycles. Experiments measure the *relative* cost of crossing the
// normal/secure boundary, which is what the reproduced paper's evaluation
// hinges on.
package tz

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// World identifies a TrustZone execution world.
type World int

const (
	// WorldNormal is the non-secure world (rich OS, untrusted).
	WorldNormal World = iota + 1
	// WorldSecure is the secure world (OP-TEE, trusted).
	WorldSecure
)

// String returns the conventional name of the world.
func (w World) String() string {
	switch w {
	case WorldNormal:
		return "normal"
	case WorldSecure:
		return "secure"
	default:
		return fmt.Sprintf("world(%d)", int(w))
	}
}

// Valid reports whether w is one of the two defined worlds.
func (w World) Valid() bool {
	return w == WorldNormal || w == WorldSecure
}

// Cycles counts virtual CPU cycles.
type Cycles uint64

// Duration converts a cycle count to wall time at the given core frequency.
func (c Cycles) Duration(freqHz uint64) time.Duration {
	if freqHz == 0 {
		return 0
	}
	return time.Duration(uint64(c) * uint64(time.Second) / freqHz)
}

// CostModel holds the cycle costs of architectural events.
//
// Defaults are calibrated to published OP-TEE / TrustZone measurements on
// Armv8 application cores (~1 GHz equivalent, so 1 cycle ~ 1 ns):
// a full SMC world-switch round trip costs tens of microseconds, while a
// null syscall costs well under a microsecond. The exact constants are
// configurable; experiment E1 sweeps them.
type CostModel struct {
	// WorldSwitch is the one-way cost of saving one world's context and
	// restoring the other's (monitor entry/exit included).
	WorldSwitch Cycles
	// SMCDispatch is the cost of decoding the SMC function ID and routing
	// it inside the secure monitor / OP-TEE entry vector.
	SMCDispatch Cycles
	// CacheFlush is the penalty applied when crossing worlds with
	// shared-memory arguments (cache maintenance on the shared range).
	CacheFlush Cycles
	// Syscall is the round-trip cost of a normal-world system call.
	Syscall Cycles
	// CopyPerByte is the per-byte cost of memcpy between buffers.
	CopyPerByte Cycles
	// DMAPerByte is the per-byte cost charged to a DMA engine transfer.
	DMAPerByte Cycles
	// RegAccess is the cost of one MMIO register read or write.
	RegAccess Cycles
	// InterruptEntry is the cost of taking an interrupt to the kernel.
	InterruptEntry Cycles

	// Homomorphic-encryption per-slot costs (the hybrid HE+TEE mode).
	// A "slot" is one packed plaintext value; leveled-HE operations are
	// orders of magnitude more expensive than their cleartext
	// counterparts, and the asymmetry below (encrypt/decrypt dominated
	// by the key-switching-heavy multiply, cheap additions) mirrors the
	// published CKKS/BFV cost profiles the hybrid mode is calibrated
	// against.

	// HEEncryptPerSlot is the per-slot cost of encrypting under the
	// provider's public key (normal world, device side).
	HEEncryptPerSlot Cycles
	// HEDecryptPerSlot is the per-slot cost of decrypting with the
	// sealed secret key (secure world, inside the TA).
	HEDecryptPerSlot Cycles
	// HEMulPerSlot is the per-slot cost of a ciphertext-plaintext
	// multiply (the dominant cost of an encrypted linear layer).
	HEMulPerSlot Cycles
	// HEAddPerSlot is the per-slot cost of a homomorphic addition.
	HEAddPerSlot Cycles
	// HERescalePerSlot is the per-slot cost of rescaling after a
	// multiply (the level-consuming maintenance operation).
	HERescalePerSlot Cycles
}

// DefaultCostModel returns the calibrated default cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		WorldSwitch:    12000, // ~12 us one way -> ~24 us SMC round trip
		SMCDispatch:    1500,
		CacheFlush:     900,
		Syscall:        700, // ~0.7 us round trip
		CopyPerByte:    1,
		DMAPerByte:     1, // DMA runs at bus speed; charged to the engine
		RegAccess:      120,
		InterruptEntry: 400,

		HEEncryptPerSlot: 6000,
		HEDecryptPerSlot: 4000,
		HEMulPerSlot:     2500,
		HEAddPerSlot:     300,
		HERescalePerSlot: 1200,
	}
}

// Clock is a shared virtual cycle clock. It is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now Cycles
}

// NewClock returns a clock starting at cycle zero.
func NewClock() *Clock { return &Clock{} }

// Advance moves the clock forward by n cycles and returns the new time.
func (c *Clock) Advance(n Cycles) Cycles {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += n
	return c.now
}

// Now returns the current cycle count.
func (c *Clock) Now() Cycles {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Errors returned by the TZASC and monitor.
var (
	// ErrSecurityViolation is returned when a world accesses memory its
	// security attribute forbids. Real hardware raises an external abort.
	ErrSecurityViolation = errors.New("tzasc: security violation")
	// ErrNoRegion is returned when an access falls outside all regions.
	ErrNoRegion = errors.New("tzasc: access outside configured regions")
	// ErrBadRegion is returned for malformed or overlapping region setups.
	ErrBadRegion = errors.New("tzasc: invalid region configuration")
	// ErrUnknownSMC is returned for an SMC function with no handler.
	ErrUnknownSMC = errors.New("monitor: unknown SMC function")
)

// RegionAttr is the security attribute of a TZASC region.
type RegionAttr int

const (
	// AttrSecureOnly allows access from the secure world only.
	AttrSecureOnly RegionAttr = iota + 1
	// AttrNonSecure allows access from both worlds (normal RAM). On real
	// hardware a non-secure region is writable by the secure world too;
	// we model the same.
	AttrNonSecure
)

// String returns the attribute name.
func (a RegionAttr) String() string {
	switch a {
	case AttrSecureOnly:
		return "secure-only"
	case AttrNonSecure:
		return "non-secure"
	default:
		return fmt.Sprintf("attr(%d)", int(a))
	}
}

// Region is one protected address range.
type Region struct {
	Name string
	Base uint64
	Size uint64
	Attr RegionAttr
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether [addr, addr+n) lies entirely inside the region.
func (r Region) Contains(addr, n uint64) bool {
	return addr >= r.Base && addr+n <= r.End() && addr+n >= addr
}

// Overlaps reports whether two regions share any address.
func (r Region) Overlaps(o Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// TZASC is the TrustZone address space controller. Regions are fixed at
// construction, mirroring boot-time carve-out on real platforms.
type TZASC struct {
	regions []Region

	mu         sync.Mutex
	violations uint64
}

// NewTZASC validates and installs the region set. Regions must be non-empty,
// non-overlapping, and have valid attributes.
func NewTZASC(regions []Region) (*TZASC, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("%w: no regions", ErrBadRegion)
	}
	for i, r := range regions {
		if r.Size == 0 {
			return nil, fmt.Errorf("%w: region %q has zero size", ErrBadRegion, r.Name)
		}
		if r.Base+r.Size < r.Base {
			return nil, fmt.Errorf("%w: region %q wraps the address space", ErrBadRegion, r.Name)
		}
		if r.Attr != AttrSecureOnly && r.Attr != AttrNonSecure {
			return nil, fmt.Errorf("%w: region %q has unknown attribute", ErrBadRegion, r.Name)
		}
		for _, prev := range regions[:i] {
			if r.Overlaps(prev) {
				return nil, fmt.Errorf("%w: regions %q and %q overlap", ErrBadRegion, prev.Name, r.Name)
			}
		}
	}
	rs := make([]Region, len(regions))
	copy(rs, regions)
	return &TZASC{regions: rs}, nil
}

// Regions returns a copy of the configured regions.
func (t *TZASC) Regions() []Region {
	rs := make([]Region, len(t.regions))
	copy(rs, t.regions)
	return rs
}

// Check validates an access of n bytes at addr from the given world.
// It returns ErrSecurityViolation for a normal-world access to a
// secure-only region and ErrNoRegion for an unmapped access.
func (t *TZASC) Check(w World, addr, n uint64) error {
	if n == 0 {
		return nil
	}
	for _, r := range t.regions {
		if !r.Contains(addr, n) {
			continue
		}
		if r.Attr == AttrSecureOnly && w != WorldSecure {
			t.mu.Lock()
			t.violations++
			t.mu.Unlock()
			return fmt.Errorf("%w: %s world access to %q [%#x,+%d)",
				ErrSecurityViolation, w, r.Name, addr, n)
		}
		return nil
	}
	return fmt.Errorf("%w: [%#x,+%d)", ErrNoRegion, addr, n)
}

// Violations returns the number of rejected accesses so far.
func (t *TZASC) Violations() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.violations
}

// FindRegion returns the region containing addr, if any.
func (t *TZASC) FindRegion(addr uint64) (Region, bool) {
	for _, r := range t.regions {
		if r.Contains(addr, 1) {
			return r, true
		}
	}
	return Region{}, false
}

// SMCFunc identifies a secure monitor call function.
type SMCFunc uint32

// SMCHandler services one SMC function inside the secure world.
// Args and results follow the SMCCC convention of small register payloads;
// larger payloads travel through shared memory checked by the TZASC.
type SMCHandler func(args [4]uint64) ([4]uint64, error)

// MonitorStats is a snapshot of monitor activity.
type MonitorStats struct {
	Switches     uint64 // one-way world switches performed
	SMCs         uint64 // SMC invocations dispatched
	SecureCycles Cycles // cycles spent with the CPU in the secure world
	SwitchCycles Cycles // cycles spent purely on switching/dispatch
}

// Monitor is the secure monitor (EL3 firmware). It owns the current world
// of the single modelled CPU and performs cost-accounted world switches.
type Monitor struct {
	clock *Clock
	cost  CostModel

	mu       sync.Mutex
	world    World
	handlers map[SMCFunc]SMCHandler
	stats    MonitorStats
}

// NewMonitor creates a monitor with the CPU starting in the normal world.
func NewMonitor(clock *Clock, cost CostModel) *Monitor {
	return &Monitor{
		clock:    clock,
		cost:     cost,
		world:    WorldNormal,
		handlers: make(map[SMCFunc]SMCHandler),
	}
}

// World returns the world the CPU currently executes in.
func (m *Monitor) World() World {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.world
}

// Cost returns the monitor's cost model.
func (m *Monitor) Cost() CostModel { return m.cost }

// Clock returns the virtual clock the monitor accounts into.
func (m *Monitor) Clock() *Clock { return m.clock }

// Register installs the handler for an SMC function ID. Registering twice
// replaces the handler; a nil handler removes it.
func (m *Monitor) Register(fn SMCFunc, h SMCHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h == nil {
		delete(m.handlers, fn)
		return
	}
	m.handlers[fn] = h
}

// SMC performs a full secure monitor call from the normal world: switch to
// secure, dispatch the handler, switch back. The handler runs with the CPU
// in the secure world. Costs are charged to the virtual clock.
func (m *Monitor) SMC(fn SMCFunc, args [4]uint64) ([4]uint64, error) {
	m.mu.Lock()
	h, ok := m.handlers[fn]
	if !ok {
		m.mu.Unlock()
		return [4]uint64{}, fmt.Errorf("%w: %#x", ErrUnknownSMC, uint32(fn))
	}
	m.enterSecureLocked()
	m.stats.SMCs++
	m.clock.Advance(m.cost.SMCDispatch)
	m.stats.SwitchCycles += m.cost.SMCDispatch
	m.mu.Unlock()

	start := m.clock.Now()
	res, err := h(args)
	elapsed := m.clock.Now() - start

	m.mu.Lock()
	m.stats.SecureCycles += elapsed
	m.exitSecureLocked()
	m.mu.Unlock()
	return res, err
}

// NormalCall runs f in the normal world while a secure-world computation
// waits — the RPC pattern OP-TEE uses to reach supplicant services. It
// charges the two extra world switches such a round trip costs.
func (m *Monitor) NormalCall(f func()) {
	m.mu.Lock()
	m.exitSecureLocked()
	m.mu.Unlock()
	f()
	m.mu.Lock()
	m.enterSecureLocked()
	m.mu.Unlock()
}

// FlushSharedRange charges cache maintenance for shared-memory arguments.
func (m *Monitor) FlushSharedRange() {
	m.clock.Advance(m.cost.CacheFlush)
	m.mu.Lock()
	m.stats.SwitchCycles += m.cost.CacheFlush
	m.mu.Unlock()
}

func (m *Monitor) enterSecureLocked() {
	m.world = WorldSecure
	m.clock.Advance(m.cost.WorldSwitch)
	m.stats.Switches++
	m.stats.SwitchCycles += m.cost.WorldSwitch
}

func (m *Monitor) exitSecureLocked() {
	m.world = WorldNormal
	m.clock.Advance(m.cost.WorldSwitch)
	m.stats.Switches++
	m.stats.SwitchCycles += m.cost.WorldSwitch
}

// Stats returns a snapshot of monitor activity.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the activity counters (used between experiment runs).
func (m *Monitor) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = MonitorStats{}
}
