package tz

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestWorldString(t *testing.T) {
	tests := []struct {
		w    World
		want string
	}{
		{WorldNormal, "normal"},
		{WorldSecure, "secure"},
		{World(7), "world(7)"},
	}
	for _, tt := range tests {
		if got := tt.w.String(); got != tt.want {
			t.Errorf("World(%d).String() = %q, want %q", int(tt.w), got, tt.want)
		}
	}
}

func TestWorldValid(t *testing.T) {
	if !WorldNormal.Valid() || !WorldSecure.Valid() {
		t.Error("defined worlds must be valid")
	}
	if World(0).Valid() || World(3).Valid() {
		t.Error("undefined worlds must be invalid")
	}
}

func TestCyclesDuration(t *testing.T) {
	tests := []struct {
		c    Cycles
		freq uint64
		want time.Duration
	}{
		{1000, 1_000_000_000, time.Microsecond},
		{0, 1_000_000_000, 0},
		{500, 0, 0},
		{2_000_000_000, 2_000_000_000, time.Second},
	}
	for _, tt := range tests {
		if got := tt.c.Duration(tt.freq); got != tt.want {
			t.Errorf("Cycles(%d).Duration(%d) = %v, want %v", tt.c, tt.freq, got, tt.want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	if got := c.Advance(10); got != 10 {
		t.Errorf("Advance returned %d, want 10", got)
	}
	c.Advance(5)
	if got := c.Now(); got != 15 {
		t.Errorf("Now() = %d, want 15", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	const goroutines = 8
	const perG = 1000
	done := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		go func() {
			for j := 0; j < perG; j++ {
				c.Advance(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	if got := c.Now(); got != goroutines*perG {
		t.Errorf("Now() = %d, want %d", got, goroutines*perG)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "ram", Base: 0x1000, Size: 0x1000}
	tests := []struct {
		addr, n uint64
		want    bool
	}{
		{0x1000, 1, true},
		{0x1000, 0x1000, true},
		{0x1fff, 1, true},
		{0x1fff, 2, false},
		{0xfff, 1, false},
		{0x2000, 1, false},
		{0x1800, ^uint64(0), false}, // overflow must not wrap into range
	}
	for _, tt := range tests {
		if got := r.Contains(tt.addr, tt.n); got != tt.want {
			t.Errorf("Contains(%#x, %d) = %v, want %v", tt.addr, tt.n, got, tt.want)
		}
	}
}

func TestRegionOverlaps(t *testing.T) {
	a := Region{Base: 0x1000, Size: 0x1000}
	tests := []struct {
		b    Region
		want bool
	}{
		{Region{Base: 0x2000, Size: 0x100}, false},
		{Region{Base: 0x0, Size: 0x1000}, false},
		{Region{Base: 0x1fff, Size: 1}, true},
		{Region{Base: 0x800, Size: 0x1000}, true},
		{Region{Base: 0x1400, Size: 0x100}, true},
	}
	for _, tt := range tests {
		if got := a.Overlaps(tt.b); got != tt.want {
			t.Errorf("Overlaps(%+v) = %v, want %v", tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(a); got != tt.want {
			t.Errorf("Overlaps symmetric (%+v) = %v, want %v", tt.b, got, tt.want)
		}
	}
}

func defaultRegions() []Region {
	return []Region{
		{Name: "dram", Base: 0x0000_0000, Size: 0x4000_0000, Attr: AttrNonSecure},
		{Name: "secure-ram", Base: 0x4000_0000, Size: 0x0200_0000, Attr: AttrSecureOnly},
	}
}

func TestNewTZASCValidation(t *testing.T) {
	tests := []struct {
		name    string
		regions []Region
		wantErr bool
	}{
		{"valid", defaultRegions(), false},
		{"empty", nil, true},
		{"zero size", []Region{{Name: "z", Base: 0, Size: 0, Attr: AttrNonSecure}}, true},
		{"wraps", []Region{{Name: "w", Base: ^uint64(0) - 10, Size: 100, Attr: AttrNonSecure}}, true},
		{"bad attr", []Region{{Name: "b", Base: 0, Size: 10, Attr: RegionAttr(0)}}, true},
		{"overlap", []Region{
			{Name: "a", Base: 0, Size: 0x100, Attr: AttrNonSecure},
			{Name: "b", Base: 0x80, Size: 0x100, Attr: AttrSecureOnly},
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewTZASC(tt.regions)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewTZASC() error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadRegion) {
				t.Errorf("error %v should wrap ErrBadRegion", err)
			}
		})
	}
}

func TestTZASCCheck(t *testing.T) {
	asc, err := NewTZASC(defaultRegions())
	if err != nil {
		t.Fatalf("NewTZASC: %v", err)
	}
	tests := []struct {
		name    string
		world   World
		addr, n uint64
		wantErr error
	}{
		{"normal reads dram", WorldNormal, 0x100, 64, nil},
		{"secure reads dram", WorldSecure, 0x100, 64, nil},
		{"secure reads secure ram", WorldSecure, 0x4000_0000, 64, nil},
		{"normal reads secure ram", WorldNormal, 0x4000_0000, 64, ErrSecurityViolation},
		{"normal pokes end of secure ram", WorldNormal, 0x41ff_ffff, 1, ErrSecurityViolation},
		{"unmapped", WorldNormal, 0x9000_0000, 4, ErrNoRegion},
		{"straddles regions", WorldNormal, 0x3fff_ffff, 8, ErrNoRegion},
		{"zero length always ok", WorldNormal, 0x4000_0000, 0, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := asc.Check(tt.world, tt.addr, tt.n)
			if tt.wantErr == nil && err != nil {
				t.Fatalf("Check() = %v, want nil", err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Fatalf("Check() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestTZASCViolationCounter(t *testing.T) {
	asc, err := NewTZASC(defaultRegions())
	if err != nil {
		t.Fatalf("NewTZASC: %v", err)
	}
	for i := 0; i < 3; i++ {
		_ = asc.Check(WorldNormal, 0x4000_0000, 16)
	}
	_ = asc.Check(WorldSecure, 0x4000_0000, 16) // allowed, not counted
	if got := asc.Violations(); got != 3 {
		t.Errorf("Violations() = %d, want 3", got)
	}
}

func TestTZASCFindRegion(t *testing.T) {
	asc, err := NewTZASC(defaultRegions())
	if err != nil {
		t.Fatalf("NewTZASC: %v", err)
	}
	r, ok := asc.FindRegion(0x4000_0010)
	if !ok || r.Name != "secure-ram" {
		t.Errorf("FindRegion = %+v, %v; want secure-ram", r, ok)
	}
	if _, ok := asc.FindRegion(0xffff_ffff_0000); ok {
		t.Error("FindRegion on unmapped address should fail")
	}
}

// Property: an access is either inside exactly one region (and allowed or
// denied purely by that region's attribute) or outside all regions.
func TestTZASCCheckProperty(t *testing.T) {
	asc, err := NewTZASC(defaultRegions())
	if err != nil {
		t.Fatalf("NewTZASC: %v", err)
	}
	f := func(addr uint32, n uint16, secure bool) bool {
		w := WorldNormal
		if secure {
			w = WorldSecure
		}
		a := uint64(addr)
		size := uint64(n%512) + 1
		err := asc.Check(w, a, size)
		inSecure := a >= 0x4000_0000 && a+size <= 0x4200_0000
		inDram := a+size <= 0x4000_0000
		switch {
		case inDram:
			return err == nil
		case inSecure && secure:
			return err == nil
		case inSecure && !secure:
			return errors.Is(err, ErrSecurityViolation)
		default:
			return errors.Is(err, ErrNoRegion)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMonitorSMCDispatch(t *testing.T) {
	clock := NewClock()
	m := NewMonitor(clock, DefaultCostModel())
	var sawWorld World
	m.Register(0x1001, func(args [4]uint64) ([4]uint64, error) {
		sawWorld = m.World()
		return [4]uint64{args[0] + args[1]}, nil
	})
	res, err := m.SMC(0x1001, [4]uint64{2, 3})
	if err != nil {
		t.Fatalf("SMC: %v", err)
	}
	if res[0] != 5 {
		t.Errorf("SMC result = %d, want 5", res[0])
	}
	if sawWorld != WorldSecure {
		t.Errorf("handler ran in %v, want secure", sawWorld)
	}
	if m.World() != WorldNormal {
		t.Errorf("after SMC world = %v, want normal", m.World())
	}
}

func TestMonitorUnknownSMC(t *testing.T) {
	m := NewMonitor(NewClock(), DefaultCostModel())
	_, err := m.SMC(0xdead, [4]uint64{})
	if !errors.Is(err, ErrUnknownSMC) {
		t.Errorf("SMC on unknown fn = %v, want ErrUnknownSMC", err)
	}
}

func TestMonitorCostAccounting(t *testing.T) {
	clock := NewClock()
	cost := DefaultCostModel()
	m := NewMonitor(clock, cost)
	m.Register(1, func(args [4]uint64) ([4]uint64, error) {
		clock.Advance(100) // work inside the secure world
		return [4]uint64{}, nil
	})
	before := clock.Now()
	if _, err := m.SMC(1, [4]uint64{}); err != nil {
		t.Fatalf("SMC: %v", err)
	}
	elapsed := clock.Now() - before
	want := 2*cost.WorldSwitch + cost.SMCDispatch + 100
	if elapsed != want {
		t.Errorf("SMC consumed %d cycles, want %d", elapsed, want)
	}
	st := m.Stats()
	if st.Switches != 2 {
		t.Errorf("Switches = %d, want 2", st.Switches)
	}
	if st.SMCs != 1 {
		t.Errorf("SMCs = %d, want 1", st.SMCs)
	}
	if st.SecureCycles != 100 {
		t.Errorf("SecureCycles = %d, want 100", st.SecureCycles)
	}
	if st.SwitchCycles != 2*cost.WorldSwitch+cost.SMCDispatch {
		t.Errorf("SwitchCycles = %d, want %d", st.SwitchCycles, 2*cost.WorldSwitch+cost.SMCDispatch)
	}
}

func TestMonitorHandlerErrorStillExitsSecure(t *testing.T) {
	m := NewMonitor(NewClock(), DefaultCostModel())
	wantErr := errors.New("boom")
	m.Register(2, func(args [4]uint64) ([4]uint64, error) {
		return [4]uint64{}, wantErr
	})
	if _, err := m.SMC(2, [4]uint64{}); !errors.Is(err, wantErr) {
		t.Fatalf("SMC error = %v, want %v", err, wantErr)
	}
	if m.World() != WorldNormal {
		t.Errorf("world stuck in %v after handler error", m.World())
	}
}

func TestMonitorDeregister(t *testing.T) {
	m := NewMonitor(NewClock(), DefaultCostModel())
	m.Register(3, func(args [4]uint64) ([4]uint64, error) { return [4]uint64{}, nil })
	m.Register(3, nil)
	if _, err := m.SMC(3, [4]uint64{}); !errors.Is(err, ErrUnknownSMC) {
		t.Errorf("SMC after deregister = %v, want ErrUnknownSMC", err)
	}
}

func TestMonitorResetStats(t *testing.T) {
	m := NewMonitor(NewClock(), DefaultCostModel())
	m.Register(4, func(args [4]uint64) ([4]uint64, error) { return [4]uint64{}, nil })
	if _, err := m.SMC(4, [4]uint64{}); err != nil {
		t.Fatalf("SMC: %v", err)
	}
	m.ResetStats()
	if st := m.Stats(); st.Switches != 0 || st.SMCs != 0 || st.SecureCycles != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestMonitorFlushSharedRange(t *testing.T) {
	clock := NewClock()
	cost := DefaultCostModel()
	m := NewMonitor(clock, cost)
	m.FlushSharedRange()
	if got := clock.Now(); got != cost.CacheFlush {
		t.Errorf("clock = %d after flush, want %d", got, cost.CacheFlush)
	}
	if st := m.Stats(); st.SwitchCycles != cost.CacheFlush {
		t.Errorf("SwitchCycles = %d, want %d", st.SwitchCycles, cost.CacheFlush)
	}
}

func TestRegionAttrString(t *testing.T) {
	if AttrSecureOnly.String() != "secure-only" || AttrNonSecure.String() != "non-secure" {
		t.Error("attr strings wrong")
	}
	if RegionAttr(9).String() != "attr(9)" {
		t.Error("unknown attr string wrong")
	}
}
