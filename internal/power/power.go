// Package power models device energy consumption, reproducing the paper's
// §III/§V prediction that in-TEE drivers and ML "likely come at a cost of
// ... increased power consumption". The model charges energy per CPU cycle
// (with a secure-world premium for the extra cache/TLB maintenance
// TrustZone isolation causes), per world switch, per DMA byte and per
// radio byte, driven by the cycle accounting the rest of the simulator
// already performs.
package power

import "fmt"

// Model holds the energy coefficients. Defaults approximate a Jetson-class
// embedded ARM SoC running at ~1 GHz.
type Model struct {
	// PicoJoulePerCycle is the baseline active-core energy per cycle.
	PicoJoulePerCycle float64
	// SecureCyclePremium multiplies cycles spent in the secure world
	// (cache/TLB maintenance and monitor overhead), e.g. 0.10 = +10%.
	SecureCyclePremium float64
	// NanoJoulePerSwitch is the energy of one world switch beyond its
	// cycle cost (pipeline drain, cache writeback).
	NanoJoulePerSwitch float64
	// PicoJoulePerDMAByte is the DMA engine + memory energy per byte.
	PicoJoulePerDMAByte float64
	// NanoJoulePerRadioByte is the network interface energy per byte.
	NanoJoulePerRadioByte float64
	// IdleMilliwatt is the baseline platform draw; charged per second of
	// modelled time.
	IdleMilliwatt float64
}

// DefaultModel returns coefficients representative of embedded ARM SoCs
// (~300 pJ/cycle active energy, Wi-Fi-class radio).
func DefaultModel() Model {
	return Model{
		PicoJoulePerCycle:     300,
		SecureCyclePremium:    0.10,
		NanoJoulePerSwitch:    150,
		PicoJoulePerDMAByte:   50,
		NanoJoulePerRadioByte: 20,
		IdleMilliwatt:         1500,
	}
}

// Usage is the activity to be priced, in the simulator's units.
type Usage struct {
	TotalCycles  uint64 // all CPU cycles (both worlds)
	SecureCycles uint64 // subset spent in the secure world
	Switches     uint64 // one-way world switches
	DMABytes     uint64
	RadioBytes   uint64
	FreqHz       uint64 // core frequency to convert cycles to time
}

// Report is the priced result, in millijoules.
type Report struct {
	CPUmJ    float64
	SecuremJ float64 // premium attributable to the secure world
	SwitchmJ float64
	DMAmJ    float64
	RadiomJ  float64
	IdlemJ   float64
}

// TotalmJ sums all components.
func (r Report) TotalmJ() float64 {
	return r.CPUmJ + r.SecuremJ + r.SwitchmJ + r.DMAmJ + r.RadiomJ + r.IdlemJ
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("total %.3f mJ (cpu %.3f, secure-premium %.3f, switch %.3f, dma %.3f, radio %.3f, idle %.3f)",
		r.TotalmJ(), r.CPUmJ, r.SecuremJ, r.SwitchmJ, r.DMAmJ, r.RadiomJ, r.IdlemJ)
}

// Measure prices a usage snapshot under the model.
func (m Model) Measure(u Usage) Report {
	const pJtomJ = 1e-9
	const nJtomJ = 1e-6
	r := Report{
		CPUmJ:    float64(u.TotalCycles) * m.PicoJoulePerCycle * pJtomJ,
		SecuremJ: float64(u.SecureCycles) * m.PicoJoulePerCycle * m.SecureCyclePremium * pJtomJ,
		SwitchmJ: float64(u.Switches) * m.NanoJoulePerSwitch * nJtomJ,
		DMAmJ:    float64(u.DMABytes) * m.PicoJoulePerDMAByte * pJtomJ,
		RadiomJ:  float64(u.RadioBytes) * m.NanoJoulePerRadioByte * nJtomJ,
	}
	if u.FreqHz > 0 {
		seconds := float64(u.TotalCycles) / float64(u.FreqHz)
		r.IdlemJ = m.IdleMilliwatt * seconds
	}
	return r
}

// OverheadPct returns the percentage increase of b over a in total energy.
func OverheadPct(a, b Report) float64 {
	if a.TotalmJ() == 0 {
		return 0
	}
	return 100 * (b.TotalmJ() - a.TotalmJ()) / a.TotalmJ()
}
