package power

import (
	"math"
	"strings"
	"testing"
)

func TestMeasureComponents(t *testing.T) {
	m := Model{
		PicoJoulePerCycle:     100,
		SecureCyclePremium:    0.5,
		NanoJoulePerSwitch:    10,
		PicoJoulePerDMAByte:   20,
		NanoJoulePerRadioByte: 5,
		IdleMilliwatt:         1000,
	}
	r := m.Measure(Usage{
		TotalCycles:  1_000_000, // 1e6 * 100 pJ = 0.1 mJ
		SecureCycles: 500_000,   // 5e5 * 100 * 0.5 = 0.025 mJ
		Switches:     100,       // 100 * 10 nJ = 0.001 mJ
		DMABytes:     1_000_000, // 1e6 * 20 pJ = 0.02 mJ
		RadioBytes:   10_000,    // 1e4 * 5 nJ = 0.05 mJ
		FreqHz:       1_000_000_000,
	})
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"cpu", r.CPUmJ, 0.1},
		{"secure", r.SecuremJ, 0.025},
		{"switch", r.SwitchmJ, 0.001},
		{"dma", r.DMAmJ, 0.02},
		{"radio", r.RadiomJ, 0.05},
		{"idle", r.IdlemJ, 1.0}, // 1 ms at 1000 mW
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if math.Abs(r.TotalmJ()-(0.1+0.025+0.001+0.02+0.05+1.0)) > 1e-9 {
		t.Errorf("total = %v", r.TotalmJ())
	}
}

func TestSecurePremiumMakesSecureRunsCostlier(t *testing.T) {
	m := DefaultModel()
	base := m.Measure(Usage{TotalCycles: 1_000_000, FreqHz: 1_000_000_000})
	secure := m.Measure(Usage{
		TotalCycles:  1_000_000,
		SecureCycles: 800_000,
		Switches:     1000,
		FreqHz:       1_000_000_000,
	})
	if secure.TotalmJ() <= base.TotalmJ() {
		t.Errorf("secure run (%v mJ) not costlier than base (%v mJ)", secure.TotalmJ(), base.TotalmJ())
	}
	if pct := OverheadPct(base, secure); pct <= 0 {
		t.Errorf("overhead pct = %v, want > 0", pct)
	}
}

func TestZeroFreqSkipsIdle(t *testing.T) {
	r := DefaultModel().Measure(Usage{TotalCycles: 1000})
	if r.IdlemJ != 0 {
		t.Errorf("IdlemJ = %v with no frequency", r.IdlemJ)
	}
}

func TestOverheadPctZeroBase(t *testing.T) {
	if OverheadPct(Report{}, Report{CPUmJ: 1}) != 0 {
		t.Error("zero-base overhead should be 0")
	}
}

func TestReportString(t *testing.T) {
	s := DefaultModel().Measure(Usage{TotalCycles: 1000, FreqHz: 1e9}).String()
	if !strings.Contains(s, "total") || !strings.Contains(s, "mJ") {
		t.Errorf("String() = %q", s)
	}
}
