package experiments

// E18: the hybrid HE+TEE split. The paper keeps the whole classifier
// inside the enclave; hybrid-he offloads the first linear layer to the
// provider under leveled HE, so the provider computes on features it can
// never read. E18 measures what that buys: the per-mode leakage table
// ranks provider-observable feature bytes (baseline's raw audio ≫
// secure-filter's forwarded cleartext tokens > hybrid-he's zero), checks
// the hybrid verdicts stay bit-identical to secure-filter on the same
// workload, proves the noise budget rejects over-depth circuits with a
// typed error, and runs a mixed fleet (hybrid-he weighted in) through
// the audit-conservation identity.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/he"
	"repro/internal/metrics"
	"repro/internal/ml/classify"
	"repro/internal/relay"
	"repro/internal/tz"
)

// E18Row is one mode's provider-observable surface.
type E18Row struct {
	Mode            core.Mode
	CloudAudioBytes int
	CloudTokens     int
	CloudSensTokens int
	// CiphertextBytes is HE traffic through the provider (both
	// directions); semantically opaque without the device's secret key.
	CiphertextBytes uint64
	// FeatureExposedBytes is what the provider can reconstruct the
	// classifier's input features from: raw audio for baseline, forwarded
	// cleartext token ids for the secure modes, and the HE service's
	// cleartext-feature counter (zero by construction) for hybrid-he.
	FeatureExposedBytes uint64
}

// E18Result carries the fleet-leg conservation counters alongside the
// per-mode rows.
type E18Result struct {
	Rows           []E18Row
	ExpectedEvents int
	Ingested       uint64
	Shed           uint64
	Expired        int
	LostFrames     int
}

// tokenBytes prices a forwarded cleartext token stream in feature bytes:
// the text classifier consumes token ids (4 B each), so every token the
// provider sees is a feature it holds in the clear.
func tokenBytes(tokens int) uint64 { return uint64(tokens) * 4 }

// E18HybridHE runs the hybrid-he privacy experiment.
func E18HybridHE(seed uint64) (*metrics.Table, E18Result, error) {
	fail := func(format string, a ...any) (*metrics.Table, E18Result, error) {
		return nil, E18Result{}, fmt.Errorf("e18: "+format, a...)
	}
	cases := []struct {
		mode core.Mode
		opts sessionOpts
	}{
		{core.ModeBaseline, sessionOpts{policy: relay.PolicyPassThrough}},
		{core.ModeSecureNoFilter, sessionOpts{policy: relay.PolicyPassThrough}},
		{core.ModeSecureFilter, sessionOpts{policy: relay.PolicyBlock, arch: classify.ArchCNN}},
		{core.ModeHybridHE, sessionOpts{policy: relay.PolicyBlock, arch: classify.ArchCNN}},
	}
	out := E18Result{}
	tbl := metrics.NewTable("E18: hybrid HE+TEE split — provider-observable bytes per mode",
		"mode", "audio B", "tokens", "sens tokens", "HE ct B", "feature B exposed")
	byMode := map[core.Mode]E18Row{}
	for _, c := range cases {
		sys, err := core.NewSystem(core.Config{
			Mode:   c.mode,
			Policy: c.opts.policy,
			Arch:   c.opts.arch,
			Seed:   seed,
			FreqHz: FreqHz,
		})
		if err != nil {
			return fail("%v system: %v", c.mode, err)
		}
		utts, err := sessionWorkload(sessionN, seed+7)
		if err != nil {
			return fail("workload: %v", err)
		}
		res, err := sys.RunSession(utts)
		if err != nil {
			return fail("%v session: %v", c.mode, err)
		}
		row := E18Row{
			Mode:            c.mode,
			CloudAudioBytes: res.CloudAudit.AudioBytes,
			CloudTokens:     res.CloudAudit.TokensSeen,
			CloudSensTokens: res.CloudAudit.SensitiveTokens,
		}
		switch c.mode {
		case core.ModeBaseline:
			row.FeatureExposedBytes = uint64(res.CloudAudit.AudioBytes)
		case core.ModeHybridHE:
			if sys.HE == nil {
				return fail("hybrid system has no HE service")
			}
			audit := sys.HE.Audit()
			if audit.Evals == 0 {
				return fail("hybrid session evaluated no HE circuits")
			}
			row.CiphertextBytes = audit.CiphertextBytesIn + audit.CiphertextBytesOut
			row.FeatureExposedBytes = audit.CleartextFeatureBytes
		default:
			row.FeatureExposedBytes = tokenBytes(res.CloudAudit.TokensSeen)
		}
		byMode[c.mode] = row
		out.Rows = append(out.Rows, row)
		tbl.AddRow(c.mode.String(), row.CloudAudioBytes, row.CloudTokens,
			row.CloudSensTokens, row.CiphertextBytes, row.FeatureExposedBytes)
	}

	// The central claim: the provider computes the first layer yet holds
	// zero cleartext feature bytes, and the ordering baseline ≫
	// secure-filter > hybrid-he holds on the same workload.
	hyb, filt, base := byMode[core.ModeHybridHE], byMode[core.ModeSecureFilter], byMode[core.ModeBaseline]
	if hyb.FeatureExposedBytes != 0 {
		return fail("provider observed %d cleartext feature bytes in hybrid-he", hyb.FeatureExposedBytes)
	}
	if hyb.CiphertextBytes == 0 {
		return fail("hybrid-he moved no ciphertext")
	}
	if base.FeatureExposedBytes < 10*filt.FeatureExposedBytes || filt.FeatureExposedBytes <= hyb.FeatureExposedBytes {
		return fail("feature exposure ordering violated: baseline %d, secure-filter %d, hybrid-he %d",
			base.FeatureExposedBytes, filt.FeatureExposedBytes, hyb.FeatureExposedBytes)
	}
	// Moving the first layer out of the enclave must not move the
	// verdicts: hybrid-he forwards exactly what secure-filter forwards.
	if hyb.CloudTokens != filt.CloudTokens || hyb.CloudSensTokens != filt.CloudSensTokens {
		return fail("hybrid-he verdicts drifted from secure-filter: %d/%d tokens vs %d/%d",
			hyb.CloudTokens, hyb.CloudSensTokens, filt.CloudTokens, filt.CloudSensTokens)
	}

	// Depth safety: a circuit past the parameter set's level budget is a
	// typed he.ErrNoiseBudget, never a silently wrong result.
	if err := overDepthRejected(seed); err != nil {
		return fail("%v", err)
	}

	// Fleet leg: weight every registered mode (hybrid-he included) and
	// hold the conservation identity expected == ingested + shed + expired.
	mix := fleet.MixSpec{}
	for _, m := range core.Modes() {
		mix[m] = 1
	}
	fres, err := fleet.Run(fleet.Config{
		Devices:    24,
		Shards:     2,
		Utterances: 2,
		Frames:     2,
		Seed:       seed,
		FreqHz:     FreqHz,
		Mix:        mix,
	})
	if err != nil {
		return fail("mixed fleet: %v", err)
	}
	out.ExpectedEvents = fres.ExpectedCloudEvents
	out.Ingested = fres.IngestedFrames()
	out.Shed = fres.ShedFrames()
	out.Expired = fres.ExpiredFrames()
	out.LostFrames = fres.LostFrames()
	if out.LostFrames != 0 {
		return fail("mixed fleet lost %d frames (expected %d, ingested %d, shed %d, expired %d)",
			out.LostFrames, out.ExpectedEvents, out.Ingested, out.Shed, out.Expired)
	}
	tbl.AddRow("fleet(all modes)", "-", "-", "-", "-",
		fmt.Sprintf("conserved %d=%d+%d+%d", out.ExpectedEvents, out.Ingested, out.Shed, out.Expired))
	return tbl, out, nil
}

// overDepthRejected drives a fresh ciphertext one multiply past the
// parameter set's depth budget and requires the typed error.
func overDepthRejected(seed uint64) error {
	p := he.DefaultParams()
	kp, err := he.KeyGen(p, seed)
	if err != nil {
		return err
	}
	eval, err := he.NewEvaluator(p, nil, tz.CostModel{})
	if err != nil {
		return err
	}
	ct, err := eval.Encrypt(kp.Public, make([]float32, 4), []int{4})
	if err != nil {
		return err
	}
	op := &he.Dense{In: 4, Out: 4, W: make([]float32, 16), B: make([]float32, 4)}
	for i := 0; i <= p.MaxDepth; i++ {
		next, err := eval.Dense(op, ct)
		if i < p.MaxDepth {
			if err != nil {
				return fmt.Errorf("depth %d of %d rejected early: %v", i+1, p.MaxDepth, err)
			}
			ct = next
			continue
		}
		if !errors.Is(err, he.ErrNoiseBudget) {
			return fmt.Errorf("over-depth circuit returned %v, want he.ErrNoiseBudget", err)
		}
	}
	return nil
}
