package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tz"
)

func TestE1ShapesHold(t *testing.T) {
	tbl, res, err := E1WorldSwitch(200, tz.DefaultCostModel())
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	// The SMC round trip must dwarf a syscall (tens of microseconds vs
	// sub-microsecond), the paper's core overhead claim.
	if res.SMCOverSyscall < 5 {
		t.Errorf("SMC/syscall ratio = %v, want >= 5", res.SMCOverSyscall)
	}
	// TEEC invoke includes the SMC, so it costs at least as much.
	if res.TAInvokeCycles < res.SMCCycles {
		t.Errorf("TA invoke %v below raw SMC %v", res.TAInvokeCycles, res.SMCCycles)
	}
	// The TA->PTA call stays inside the secure world: far cheaper than an
	// SMC, comparable to a syscall.
	if res.PTAInvokeCycles >= res.SMCCycles/2 {
		t.Errorf("PTA call %v not well below SMC %v", res.PTAInvokeCycles, res.SMCCycles)
	}
	// The RPC pays two extra switches: costlier than the plain invoke.
	if res.RPCCycles <= 0 {
		t.Errorf("RPC delta = %v, want positive", res.RPCCycles)
	}
	if !strings.Contains(tbl.String(), "null SMC round trip") {
		t.Error("table missing SMC row")
	}
}

func TestE2ShapesHold(t *testing.T) {
	fig, points, err := E2CaptureSweep()
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	if len(points) < 5 {
		t.Fatalf("only %d points", len(points))
	}
	// Secure always costs more than normal at equal chunk size.
	for _, p := range points {
		if p.SecureCycles <= p.NormalCycles {
			t.Errorf("chunk %d: secure %v not above normal %v", p.ChunkBytes, p.SecureCycles, p.NormalCycles)
		}
	}
	// The overhead factor shrinks as chunks grow (amortization).
	first, last := points[0], points[len(points)-1]
	if last.OverheadFactor >= first.OverheadFactor {
		t.Errorf("overhead factor did not shrink: %v at %dB vs %v at %dB",
			first.OverheadFactor, first.ChunkBytes, last.OverheadFactor, last.ChunkBytes)
	}
	// Small chunks should show a large (multi-x) penalty.
	if first.OverheadFactor < 2 {
		t.Errorf("256B overhead factor = %v, want >= 2", first.OverheadFactor)
	}
	if !strings.Contains(fig.String(), "Fig-A") {
		t.Error("figure title missing")
	}
}

func TestE3ShapesHold(t *testing.T) {
	tbl, rows, err := E3Classifiers(DefaultSeed)
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0.85 {
			t.Errorf("%v accuracy = %v, want >= 0.85", r.Arch, r.Accuracy)
		}
		if !r.FitsTEE {
			t.Errorf("%v does not fit the TEE model budget", r.Arch)
		}
		if r.Params <= 0 || r.InferenceCycles <= 0 {
			t.Errorf("%v degenerate accounting: %+v", r.Arch, r)
		}
	}
	// Hybrid is the largest model (CNN extractor + attention head).
	if rows[2].Params <= rows[0].Params {
		t.Errorf("hybrid (%d) not larger than cnn (%d)", rows[2].Params, rows[0].Params)
	}
	if !strings.Contains(tbl.String(), "transformer") {
		t.Error("table missing transformer row")
	}
}

func TestE3bShapesHold(t *testing.T) {
	fig, points, err := E3bNoiseRobustness(DefaultSeed)
	if err != nil {
		t.Fatalf("E3b: %v", err)
	}
	if len(points) != 15 { // 5 noise levels x 3 architectures
		t.Fatalf("%d points", len(points))
	}
	// Index: points are appended noise-major, arch-minor.
	atNoise := func(noise float64) []E3bPoint {
		var out []E3bPoint
		for _, p := range points {
			if p.Noise == noise {
				out = append(out, p)
			}
		}
		return out
	}
	clean := atNoise(0.005)
	noisy := atNoise(0.3)
	// Near-clean conditions: high ASR accuracy, high recall.
	for _, p := range clean {
		if p.ASRAccuracy < 0.8 {
			t.Errorf("clean ASR accuracy = %v", p.ASRAccuracy)
		}
		if p.Recall < 0.8 {
			t.Errorf("%v clean recall = %v, want >= 0.8", p.Arch, p.Recall)
		}
	}
	// Heavy noise: ASR accuracy erodes, dragging recall with it.
	if noisy[0].ASRAccuracy >= clean[0].ASRAccuracy {
		t.Errorf("ASR accuracy did not degrade: %v vs %v", noisy[0].ASRAccuracy, clean[0].ASRAccuracy)
	}
	for i := range noisy {
		if noisy[i].Recall > clean[i].Recall {
			t.Errorf("%v recall improved under noise: %v vs %v", noisy[i].Arch, noisy[i].Recall, clean[i].Recall)
		}
	}
	if !strings.Contains(fig.String(), "recall") {
		t.Error("figure missing recall series")
	}
}

func TestE4ShapesHold(t *testing.T) {
	_, rows, err := E4PipelineBreakdown(DefaultSeed)
	if err != nil {
		t.Fatalf("E4: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	base, nofilter, filter := rows[0], rows[1], rows[2]
	// Secure modes pay for on-device transcription.
	if nofilter.Total <= base.Total || filter.Total <= base.Total {
		t.Errorf("secure totals (%v, %v) not above baseline %v", nofilter.Total, filter.Total, base.Total)
	}
	// Only the filter mode spends classify cycles.
	if base.Classify != 0 || nofilter.Classify != 0 {
		t.Errorf("classify cycles in non-filter modes: %v, %v", base.Classify, nofilter.Classify)
	}
	if filter.Classify <= 0 {
		t.Error("filter mode spent no classify cycles")
	}
	// Transcription dominates the secure pipeline (small models, long audio).
	if filter.Transcribe < filter.Classify {
		t.Errorf("transcribe %v below classify %v", filter.Transcribe, filter.Classify)
	}
}

func TestE5ShapesHold(t *testing.T) {
	_, rows, err := E5Leakage(DefaultSeed)
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	base, nofilter, block, redact := rows[0], rows[1], rows[2], rows[3]
	// The baseline ships raw audio and the provider transcribes it.
	if base.CloudAudioBytes == 0 || base.CloudSensTokens == 0 {
		t.Errorf("baseline leak missing: %+v", base)
	}
	// Without filtering, transcripts still leak private tokens.
	if nofilter.CloudSensTokens == 0 {
		t.Errorf("no-filter leak missing: %+v", nofilter)
	}
	// Filtering collapses the leak.
	if block.CloudSensTokens >= nofilter.CloudSensTokens {
		t.Errorf("block policy leaked %d vs %d unfiltered", block.CloudSensTokens, nofilter.CloudSensTokens)
	}
	if redact.CloudSensTokens >= nofilter.CloudSensTokens {
		t.Errorf("redact policy leaked %d vs %d unfiltered", redact.CloudSensTokens, nofilter.CloudSensTokens)
	}
	// Only the baseline exposes bytes to the snooping OS.
	if base.SnoopRecovered == 0 {
		t.Error("baseline snoop recovered nothing")
	}
	if nofilter.SnoopRecovered != 0 || block.SnoopRecovered != 0 {
		t.Error("secure modes leaked bytes to the OS")
	}
	// The sealed relay never shows the supplicant plaintext.
	for _, r := range rows[1:] {
		if r.SupplicantLeaks != 0 {
			t.Errorf("%s: supplicant saw %d plaintext tokens", r.Label, r.SupplicantLeaks)
		}
	}
}

func TestE6ShapesHold(t *testing.T) {
	tbl, byModule, res, err := E6TCB()
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	// A clean capture never runs the xrun error path, so the trace-only
	// build must fail the static link check — the ablation's point.
	if res.ExactErr == nil {
		t.Error("exact build linked; expected missing error-path callee")
	} else if !strings.Contains(res.ExactErr.Error(), "xrun_recover") {
		t.Errorf("exact build failed for the wrong reason: %v", res.ExactErr)
	}
	if res.ClosureRed.LoCCutPct < 30 {
		t.Errorf("closure LoC cut = %v%%, want >= 30%%", res.ClosureRed.LoCCutPct)
	}
	// The closure image must contain the error path the trace missed.
	if !res.StaticClosure.Contains("xrun_recover") {
		t.Error("closure image missing xrun_recover")
	}
	if res.Directives == 0 {
		t.Error("no exclude directives generated")
	}
	if !strings.Contains(tbl.String(), "FAILS TO LINK") {
		t.Errorf("table missing link-failure row:\n%s", tbl)
	}
	if !strings.Contains(byModule.String(), "usb-audio") {
		t.Error("per-module table incomplete")
	}
}

func TestE7ShapesHold(t *testing.T) {
	_, rows, err := E7Energy(DefaultSeed)
	if err != nil {
		t.Fatalf("E7: %v", err)
	}
	base, nofilter, filter := rows[0], rows[1], rows[2]
	// The paper's prediction: secure modes burn more compute energy.
	if nofilter.ComputeMJ <= base.ComputeMJ || filter.ComputeMJ <= base.ComputeMJ {
		t.Errorf("secure compute energy (%v, %v) not above baseline %v",
			nofilter.ComputeMJ, filter.ComputeMJ, base.ComputeMJ)
	}
	// The counterweight: radio energy collapses without raw audio.
	if filter.RadioMJ >= base.RadioMJ {
		t.Errorf("filter radio %v not below baseline %v", filter.RadioMJ, base.RadioMJ)
	}
	if filter.OverheadPct <= 0 {
		t.Errorf("filter compute overhead = %v%%, want positive", filter.OverheadPct)
	}
}

func TestE8ShapesHold(t *testing.T) {
	_, rows, err := E8Snoop(DefaultSeed)
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	if rows[0].SuccessRatePct != 100 {
		t.Errorf("baseline snoop success = %v%%, want 100%%", rows[0].SuccessRatePct)
	}
	for _, r := range rows[1:] {
		if r.SuccessRatePct != 0 {
			t.Errorf("%v snoop success = %v%%, want 0%%", r.Mode, r.SuccessRatePct)
		}
		if r.Blocked != r.Attempts {
			t.Errorf("%v blocked %d/%d", r.Mode, r.Blocked, r.Attempts)
		}
	}
}

func TestE9ShapesHold(t *testing.T) {
	fig, points, err := E9Scale(DefaultSeed)
	if err != nil {
		t.Fatalf("E9: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		// Baseline devices finish sessions in less virtual time, so
		// aggregate throughput stays above the secure stack's.
		if p.SecureKBPerSec >= p.BaselineKBPerSec {
			t.Errorf("k=%d: secure %v not below baseline %v",
				p.Devices, p.SecureKBPerSec, p.BaselineKBPerSec)
		}
	}
	// Independent devices: aggregate throughput grows with device count.
	if points[3].BaselineKBPerSec <= points[0].BaselineKBPerSec {
		t.Errorf("baseline aggregate did not scale: %v -> %v",
			points[0].BaselineKBPerSec, points[3].BaselineKBPerSec)
	}
	if points[3].SecureKBPerSec <= points[0].SecureKBPerSec {
		t.Errorf("secure aggregate did not scale: %v -> %v",
			points[0].SecureKBPerSec, points[3].SecureKBPerSec)
	}
	if !strings.Contains(fig.String(), "Fig-D") {
		t.Error("figure title missing")
	}
}

// TestE11ShapesHold asserts the attested-rollout claims: a staged
// rollout completes with zero unattested events ingested, the model
// version converges fleet-wide, and no frames are lost.
func TestE11ShapesHold(t *testing.T) {
	tbl, res, err := E11AttestedRollout(DefaultSeed)
	if err != nil {
		t.Fatalf("E11: %v", err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if !res.Converged || res.ToVersion != 2 {
		t.Fatalf("rollout did not converge to v2: %+v", res)
	}
	if len(res.VersionCounts) != 1 || res.VersionCounts[2] == 0 {
		t.Fatalf("fleet versions not converged: %v", res.VersionCounts)
	}
	if res.LostFrames != 0 {
		t.Fatalf("lost %d frames", res.LostFrames)
	}
	if res.UnattestedIngested != 0 {
		t.Fatalf("%d unattested events ingested", res.UnattestedIngested)
	}
	if res.RogueAttempts == 0 || res.RogueRejected != res.RogueAttempts {
		t.Fatalf("rogues not fully rejected: %d/%d", res.RogueRejected, res.RogueAttempts)
	}
	if res.AttestedDevices == 0 || res.ItemsPerSec <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

// TestE12ShapesHold asserts the elastic-fleet acceptance claims: 30%
// churn with a mid-run shard drain loses zero frames to rebalancing,
// never sheds a priority frame, keeps the non-churned sub-population's
// audit counters bit-identical to a static run, and still converges a
// staged rollout (raising the ingest floor) when joiners arrive mid-way.
func TestE12ShapesHold(t *testing.T) {
	tbl, res, err := E12ElasticFleet(DefaultSeed)
	if err != nil {
		t.Fatalf("E12: %v", err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if res.Joined == 0 || res.Left == 0 {
		t.Fatalf("churn inactive: %+v", res)
	}
	if !res.AuditIdentical || res.Compared == 0 {
		t.Fatalf("non-churned sub-population diverged: %+v", res)
	}
	if res.LostFrames != 0 {
		t.Fatalf("lost %d frames to rebalancing", res.LostFrames)
	}
	if res.DrainedShard == "" || res.AddedShards == 0 {
		t.Fatalf("rebalance did not run: %+v", res)
	}
	if res.PriorityFrames == 0 {
		t.Fatal("no frames rode the priority lane")
	}
	if !res.RolloutConverged || res.MinVersion != 2 {
		t.Fatalf("elastic rollout leg failed: %+v", res)
	}
}

// TestE14ShapesHold asserts the frame-telemetry acceptance claims: at
// 1-in-1 sampling every client is traced, the per-verdict span tallies
// equal the audit counters bit-exactly (E14FrameTelemetry errors out on
// any divergence), the revocation drill leaves an anomaly with its
// flight-recorder dump, and the exported trace survives the strict
// metadata-only grammar round trip.
func TestE14ShapesHold(t *testing.T) {
	tbl, res, err := E14FrameTelemetry(DefaultSeed)
	if err != nil {
		t.Fatalf("E14: %v", err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if res.Spans == 0 || res.Delivered == 0 {
		t.Fatalf("telemetry empty: %+v", res)
	}
	if res.Rejected == 0 {
		t.Fatal("lifecycle probes and rogues produced no rejection spans")
	}
	if res.Anomalies == 0 {
		t.Fatal("no anomaly recorded despite revocations")
	}
	if !res.RoundTrip {
		t.Fatal("dump round trip diverged")
	}
	if res.DumpBytes == 0 {
		t.Fatal("empty trace dump")
	}
}

// TestE15ShapesHold asserts the deterministic-chaos acceptance claims:
// the crash-free chaos plan bit-replays, the conservation identity
// expected == ingested + shed + expired holds on every leg, crashes are
// healed by supervised restarts that replay the stranded queues, and
// zero-expiry devices are bit-identical to the fault-free run
// (E15ChaosFleet errors out on any violation).
func TestE15ShapesHold(t *testing.T) {
	tbl, res, err := E15ChaosFleet(DefaultSeed)
	if err != nil {
		t.Fatalf("E15: %v", err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if res.Injected == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", res)
	}
	if res.Retries == 0 || res.RetryRecovered == 0 {
		t.Fatalf("injected drops provoked no retry recoveries: %+v", res)
	}
	if res.DuplicatesDropped == 0 {
		t.Fatalf("injected duplicates were never deduplicated: %+v", res)
	}
	if res.Compared == 0 {
		t.Fatal("identity leg compared no devices")
	}
}

func TestDriverRigCaptureBytes(t *testing.T) {
	rig, err := newDriverRig(tz.WorldNormal, 4096)
	if err != nil {
		t.Fatalf("newDriverRig: %v", err)
	}
	cycles, err := rig.captureBytes(16 << 10)
	if err != nil {
		t.Fatalf("captureBytes: %v", err)
	}
	if cycles == 0 {
		t.Error("capture consumed no cycles")
	}
}

func TestWorkloadAndHelpers(t *testing.T) {
	utts, err := Workload(10, 1)
	if err != nil || len(utts) != 10 {
		t.Fatalf("Workload = %d, %v", len(utts), err)
	}
	if EnergyModelInUse().PicoJoulePerCycle <= 0 {
		t.Error("energy model degenerate")
	}
	if _, err := E5Baseline(DefaultSeed); err != nil {
		t.Errorf("E5Baseline: %v", err)
	}
	if _, err := modeSession(core.Mode(0), sessionOpts{}, 1, 1); err == nil {
		t.Error("bad mode accepted")
	}
}

// TestE16ShapesHold asserts the batch-scheduler acceptance claims: the
// scheduled elastic fleet's per-device audits are bit-identical to the
// per-device classify run, no flush mixes model versions, the scheduler
// coalesces above occupancy 1, no frames are lost, and the rollout
// converges (E16BatchScheduler errors out on any violation).
func TestE16ShapesHold(t *testing.T) {
	tbl, res, err := E16BatchScheduler(DefaultSeed)
	if err != nil {
		t.Fatalf("E16: %v", err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if res.Compared != res.Devices+res.Joined {
		t.Fatalf("compared %d devices, want the whole population (%d)",
			res.Compared, res.Devices+res.Joined)
	}
	if res.MeanOccupancy < 1 {
		t.Fatalf("mean occupancy %.2f < 1", res.MeanOccupancy)
	}
}

// TestE17ShapesHold asserts the event-driven pipeline acceptance claims:
// the async fleet's per-device audits are bit-identical to the
// synchronous scheduled run, no frames are lost, groups actually park on
// the executor pool, the live-pipeline high-water mark stays below the
// population, and scheduler occupancy does not regress
// (E17AsyncPipeline errors out on any violation).
func TestE17ShapesHold(t *testing.T) {
	tbl, res, err := E17AsyncPipeline(DefaultSeed)
	if err != nil {
		t.Fatalf("E17: %v", err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if res.Compared != res.Devices+res.Joined {
		t.Fatalf("compared %d devices, want the whole population (%d)",
			res.Compared, res.Devices+res.Joined)
	}
	if res.AsyncOccupancy < 1 {
		t.Fatalf("async occupancy %.2f < 1", res.AsyncOccupancy)
	}
}

func TestE18ShapesHold(t *testing.T) {
	tbl, res, err := E18HybridHE(DefaultSeed)
	if err != nil {
		t.Fatalf("E18: %v", err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
	if len(res.Rows) != len(core.Modes()) {
		t.Fatalf("%d rows, want one per registered mode", len(res.Rows))
	}
	if res.LostFrames != 0 {
		t.Fatalf("mixed fleet lost %d frames", res.LostFrames)
	}
	if res.ExpectedEvents != int(res.Ingested)+int(res.Shed)+res.Expired {
		t.Fatalf("conservation: %d != %d + %d + %d",
			res.ExpectedEvents, res.Ingested, res.Shed, res.Expired)
	}
}
