package experiments

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/ftrace"
	"repro/internal/i2s"
	"repro/internal/metrics"
	"repro/internal/tcb"
	"repro/internal/tz"
)

// E6Result holds the TCB-minimization outcome (Table-4).
type E6Result struct {
	Full          tcb.Image
	ExactErr      error // trace-only image fails to link when non-nil
	Exact         tcb.Image
	StaticClosure tcb.Image
	ExactRed      tcb.Reduction
	ClosureRed    tcb.Reduction
	TracedFuncs   int
	Directives    int
}

// E6TCB reproduces the paper's §IV.2 workflow: trace one "record a sound"
// task, derive the minimal driver function set, and build reduced OP-TEE
// images under both build policies. The comparison of Exact vs
// StaticClosure is the ablation DESIGN.md calls out: pure trace-based
// minimization risks missing un-executed (error) paths; the closure build
// is the safe superset.
func E6TCB() (*metrics.Table, *metrics.Table, E6Result, error) {
	var res E6Result
	rig, err := newDriverRig(tz.WorldNormal, 4096)
	if err != nil {
		return nil, nil, res, err
	}
	rig.loadSignal(32 << 10)
	rig.Tracer.Start("record-a-sound")
	_, err = rig.Drv.CaptureTask(i2s.DefaultFormat(), 32<<10, func(need int) {
		_, _ = rig.Mic.PumpBytes(minInt(need, 4096))
	})
	trace := rig.Tracer.Stop()
	if err != nil {
		return nil, nil, res, fmt.Errorf("e6 capture: %w", err)
	}
	traced := ftrace.MinimalSet(trace)
	res.TracedFuncs = len(traced)

	table, err := driver.BuildTable()
	if err != nil {
		return nil, nil, res, err
	}
	res.Full = table.FullImage()
	// The Exact build includes only what the trace saw. A clean capture
	// never executes the xrun error path, so this build fails the static
	// link check — the hazard of pure trace-based minimization.
	res.Exact, res.ExactErr = table.BuildImage("capture-exact", traced, tcb.Exact)
	res.StaticClosure, err = table.BuildImage("capture-closure", traced, tcb.StaticClosure)
	if err != nil {
		return nil, nil, res, fmt.Errorf("e6 closure image: %w", err)
	}
	if res.ExactErr == nil {
		res.ExactRed = tcb.Compare(res.Full, res.Exact)
	}
	res.ClosureRed = tcb.Compare(res.Full, res.StaticClosure)
	res.Directives = len(table.ExcludeDirectives(res.StaticClosure))

	tbl := metrics.NewTable("E6 (Table-4): driver TCB minimization",
		"image", "functions", "LoC", "bytes", "LoC cut")
	tbl.AddRow("full driver", res.ClosureRed.FullFuncs, res.ClosureRed.FullLoC, res.ClosureRed.FullBytes, "-")
	if res.ExactErr != nil {
		tbl.AddRow("traced exact", res.TracedFuncs, "-", "-", "FAILS TO LINK (untraced error path)")
	} else {
		tbl.AddRow("traced exact", res.ExactRed.MinFuncs, res.ExactRed.MinLoC, res.ExactRed.MinBytes,
			fmt.Sprintf("%.1f%%", res.ExactRed.LoCCutPct))
	}
	tbl.AddRow("static closure", res.ClosureRed.MinFuncs, res.ClosureRed.MinLoC, res.ClosureRed.MinBytes,
		fmt.Sprintf("%.1f%%", res.ClosureRed.LoCCutPct))

	byModule := metrics.NewTable("E6 per-module breakdown (full vs closure image)",
		"module", "full funcs", "full LoC", "min funcs", "min LoC")
	minBD := make(map[string]tcb.ModuleLoC)
	for _, m := range tcb.Breakdown(res.StaticClosure) {
		minBD[m.Module] = m
	}
	for _, m := range tcb.Breakdown(res.Full) {
		mm := minBD[m.Module]
		byModule.AddRow(m.Module, m.Funcs, m.LoC, mm.Funcs, mm.LoC)
	}
	return tbl, byModule, res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
