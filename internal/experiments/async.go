package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

// E17Result is the event-driven pipeline experiment outcome.
type E17Result struct {
	Devices int
	Joined  int
	Left    int
	Rotated int
	// Equivalence leg: every device of the async run compared bit-for-bit
	// against the synchronous scheduled run of the same seed.
	Compared       int
	AuditIdentical bool
	// Executor-pool accounting: the memory claim is PeakLive — the
	// high-water mark of concurrently live device pipelines, which must
	// stay far below the population.
	Executors int
	Steps     uint64
	Parks     uint64
	PeakLive  int
	// Occupancy legs: the same scheduler, fed by blocking producers and
	// then by parked continuations. The async number is the one that must
	// show cross-device coalescing.
	SyncOccupancy  float64
	AsyncOccupancy float64
	LostFrames     int
	ItemsPerSec    float64
}

// E17AsyncPipeline is the event-driven pipeline experiment. The same
// elastic fleet — churn plus mid-run key rotations, with secure-filter
// speakers classifying through the shared scheduler — runs twice: once
// with the goroutine-per-device worker pool (a submitting speaker blocks
// in Classify until its flush fires) and once under the bounded executor
// pool, where a speaker reaching its classify stage parks an encoded
// group and a continuation instead of a goroutine. The claims under
// test: every device's audit counters are bit-identical between the two
// runs (the engine moves where waiting happens, never what is computed),
// zero frames are lost, groups actually park, peak live pipelines stay
// far below the population, and scheduler occupancy does not regress —
// parked continuations are what let flushes coalesce across devices.
func E17AsyncPipeline(seed uint64) (*metrics.Table, E17Result, error) {
	base := fleet.Config{
		Devices:    48,
		Shards:     4,
		Utterances: 3,
		Frames:     2,
		Seed:       seed,
		FreqHz:     FreqHz,
		Churn:      &fleet.ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25},
		Lifecycle:  &fleet.LifecycleSpec{RotateFraction: 0.25},
		Sched:      &fleet.SchedSpec{},
	}
	sync, err := fleet.Run(base)
	if err != nil {
		return nil, E17Result{}, fmt.Errorf("synchronous fleet: %w", err)
	}
	if sync.Sched == nil {
		return nil, E17Result{}, fmt.Errorf("synchronous fleet returned no scheduler report")
	}
	asyncCfg := base
	asyncCfg.Churn = &fleet.ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25}
	asyncCfg.Sched = &fleet.SchedSpec{}
	asyncCfg.Async = &fleet.AsyncSpec{}
	res, err := fleet.Run(asyncCfg)
	if err != nil {
		return nil, E17Result{}, fmt.Errorf("async fleet: %w", err)
	}
	if res.Async == nil || res.Sched == nil {
		return nil, E17Result{}, fmt.Errorf("async fleet returned no engine/scheduler report")
	}

	out := E17Result{
		Devices:        base.Devices,
		Joined:         res.Joined,
		Left:           res.Left,
		Rotated:        res.Rotated,
		AuditIdentical: true,
		Executors:      res.Async.Executors,
		Steps:          res.Async.Steps,
		Parks:          res.Async.Parks,
		PeakLive:       res.Async.PeakLive,
		SyncOccupancy:  sync.Sched.MeanOccupancySteady,
		AsyncOccupancy: res.Sched.MeanOccupancySteady,
		LostFrames:     res.LostFrames(),
		ItemsPerSec:    res.Throughput(),
	}
	if len(res.DeviceResults) != len(sync.DeviceResults) {
		return nil, out, fmt.Errorf("population diverged: %d vs %d devices",
			len(res.DeviceResults), len(sync.DeviceResults))
	}
	for i := range sync.DeviceResults {
		if e12Fingerprint(res.DeviceResults[i]) != e12Fingerprint(sync.DeviceResults[i]) {
			out.AuditIdentical = false
			continue
		}
		out.Compared++
	}

	tbl := metrics.NewTable("E17: event-driven pipeline (48 devices, churn + rotation, shared scheduler)",
		"devices", "joined/left/rotated", "identical", "executors", "steps", "parks",
		"peak live", "occupancy sync/async", "lost frames", "items/s(wall)")
	tbl.AddRow(out.Devices,
		fmt.Sprintf("%d/%d/%d", out.Joined, out.Left, out.Rotated),
		fmt.Sprintf("%v (%d compared)", out.AuditIdentical, out.Compared),
		out.Executors, out.Steps, out.Parks, out.PeakLive,
		fmt.Sprintf("%.2f/%.2f", out.SyncOccupancy, out.AsyncOccupancy),
		out.LostFrames, out.ItemsPerSec)

	switch {
	case !out.AuditIdentical:
		return tbl, out, fmt.Errorf("async: a device's audit diverged from the synchronous run")
	case out.LostFrames != 0:
		return tbl, out, fmt.Errorf("async: lost %d frames, want 0", out.LostFrames)
	case out.Steps == 0 || out.Parks == 0:
		return tbl, out, fmt.Errorf("async: engine inert (%d steps, %d parks)", out.Steps, out.Parks)
	case out.PeakLive == 0 || out.PeakLive > out.Devices:
		return tbl, out, fmt.Errorf("async: implausible peak of %d live pipelines (population %d)",
			out.PeakLive, out.Devices)
	case out.AsyncOccupancy < out.SyncOccupancy:
		return tbl, out, fmt.Errorf("async: occupancy regressed (%.2f vs sync %.2f)",
			out.AsyncOccupancy, out.SyncOccupancy)
	case out.Joined == 0 || out.Left == 0 || out.Rotated == 0:
		return tbl, out, fmt.Errorf("async: churn/rotation did not fire (joined %d, left %d, rotated %d)",
			out.Joined, out.Left, out.Rotated)
	}
	return tbl, out, nil
}
