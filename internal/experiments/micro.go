package experiments

import (
	"fmt"
	"time"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/i2s"
	"repro/internal/kernel"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/optee"
	"repro/internal/teec"
	"repro/internal/tz"
)

// E1Result holds the world-boundary microbenchmark (Table-1).
type E1Result struct {
	SyscallCycles   float64 // null ioctl round trip
	SMCCycles       float64 // null SMC round trip
	TAInvokeCycles  float64 // TEEC null command (SMC + TEE dispatch)
	PTAInvokeCycles float64 // TA -> PTA TEE-internal call
	RPCCycles       float64 // TA -> supplicant round trip
	SMCOverSyscall  float64 // the paper's headline overhead ratio
}

// nullDevice is a no-op char device for the syscall baseline.
type nullDevice struct{}

func (nullDevice) DevOpen() error                          { return nil }
func (nullDevice) DevRead(buf []byte) (int, error)         { return 0, nil }
func (nullDevice) DevIoctl(uint32, uint64) (uint64, error) { return 0, nil }
func (nullDevice) DevClose() error                         { return nil }

// nullTA answers every command immediately; cmd 2 performs one RPC.
type nullTA struct {
	os *optee.OS
}

func (n *nullTA) UUID() string                { return "ta.null" }
func (n *nullTA) Open(sessionID uint32) error { return nil }
func (n *nullTA) Close(sessionID uint32)      {}

func (n *nullTA) Invoke(sessionID uint32, cmd uint32, p *optee.Params) error {
	switch cmd {
	case 1:
		return nil
	case 2:
		_, err := n.os.RPC(optee.RPCRequest{Kind: optee.RPCTimeGet})
		return err
	case 3:
		return n.os.InvokeSecure("pta.null", 1, nil)
	default:
		return fmt.Errorf("nullTA: cmd %d", cmd)
	}
}

// nullPTA is the no-op pseudo TA.
type nullPTA struct{}

func (nullPTA) UUID() string                { return "pta.null" }
func (nullPTA) Open(sessionID uint32) error { return nil }
func (nullPTA) Close(sessionID uint32)      {}
func (nullPTA) Invoke(sessionID uint32, cmd uint32, p *optee.Params) error {
	return nil
}

// nullRPC services supplicant requests with no work.
type nullRPC struct{}

func (nullRPC) HandleRPC(req optee.RPCRequest) (optee.RPCResponse, error) {
	return optee.RPCResponse{}, nil
}

// E1WorldSwitch measures the boundary-crossing primitives (paper §V:
// "securing programs within a TEE usually introduces additional overhead,
// e.g., through context switches between the trusted and untrusted
// worlds").
func E1WorldSwitch(iters int, cost tz.CostModel) (*metrics.Table, E1Result, error) {
	if iters <= 0 {
		iters = 1000
	}
	var res E1Result

	// Syscall baseline.
	{
		clock := tz.NewClock()
		kern := kernel.New(clock, cost, nil)
		kern.RegisterDevice("/dev/null0", nullDevice{})
		fd, err := kern.Open("/dev/null0")
		if err != nil {
			return nil, res, err
		}
		start := clock.Now()
		for i := 0; i < iters; i++ {
			if _, err := kern.Ioctl(fd, 0, 0); err != nil {
				return nil, res, err
			}
		}
		res.SyscallCycles = float64(clock.Now()-start) / float64(iters)
	}

	// Raw SMC round trip.
	{
		clock := tz.NewClock()
		mon := tz.NewMonitor(clock, cost)
		mon.Register(1, func(args [4]uint64) ([4]uint64, error) { return [4]uint64{}, nil })
		start := clock.Now()
		for i := 0; i < iters; i++ {
			if _, err := mon.SMC(1, [4]uint64{}); err != nil {
				return nil, res, err
			}
		}
		res.SMCCycles = float64(clock.Now()-start) / float64(iters)
	}

	// TEEC null invoke, TA->PTA, TA->RPC.
	{
		clock := tz.NewClock()
		mon := tz.NewMonitor(clock, cost)
		plat, err := memory.NewPlatform(memory.DefaultLayout())
		if err != nil {
			return nil, res, err
		}
		os := optee.New(mon, plat.SecureHeap)
		ta := &nullTA{os: os}
		os.RegisterTA(ta)
		os.RegisterPTA(nullPTA{})
		os.SetRPCHandler(nullRPC{})
		ctx := teec.InitializeContext(os)
		sess, err := ctx.OpenSession("ta.null")
		if err != nil {
			return nil, res, err
		}
		measure := func(cmd uint32) (float64, error) {
			start := clock.Now()
			for i := 0; i < iters; i++ {
				if err := sess.InvokeCommand(cmd, nil); err != nil {
					return 0, err
				}
			}
			return float64(clock.Now()-start) / float64(iters), nil
		}
		if res.TAInvokeCycles, err = measure(1); err != nil {
			return nil, res, err
		}
		full, err := measure(3) // includes the nested PTA call
		if err != nil {
			return nil, res, err
		}
		res.PTAInvokeCycles = full - res.TAInvokeCycles
		fullRPC, err := measure(2)
		if err != nil {
			return nil, res, err
		}
		res.RPCCycles = fullRPC - res.TAInvokeCycles
		if err := ctx.FinalizeContext(); err != nil {
			return nil, res, err
		}
	}

	res.SMCOverSyscall = res.SMCCycles / res.SyscallCycles
	tbl := metrics.NewTable("E1 (Table-1): world-boundary crossing costs",
		"mechanism", "cycles/call", "us @1GHz", "vs syscall")
	add := func(name string, cycles float64) {
		tbl.AddRow(name, cycles, cyclesToUs(cycles), fmt.Sprintf("%.1fx", cycles/res.SyscallCycles))
	}
	add("null syscall (ioctl)", res.SyscallCycles)
	add("null SMC round trip", res.SMCCycles)
	add("TEEC null TA invoke", res.TAInvokeCycles)
	add("TA->PTA internal call", res.PTAInvokeCycles)
	add("TA->supplicant RPC", res.RPCCycles)
	return tbl, res, nil
}

// E2Point is one measurement of the capture sweep.
type E2Point struct {
	ChunkBytes     int
	NormalCycles   float64 // per captured KiB, read via syscalls
	SecureCycles   float64 // per captured KiB, read via TEEC/SMC
	OverheadFactor float64
}

// forwardTA bridges normal-world reads to the capture PTA, the realistic
// path for consuming in-TEE audio from outside (Fig. 1's TA position, with
// the processing stripped so only the crossing cost remains).
type forwardTA struct {
	os *optee.OS
}

func (f *forwardTA) UUID() string                { return "ta.forward" }
func (f *forwardTA) Open(sessionID uint32) error { return nil }
func (f *forwardTA) Close(sessionID uint32)      {}

func (f *forwardTA) Invoke(sessionID uint32, cmd uint32, p *optee.Params) error {
	return f.os.InvokeSecure(core.UUIDDriverPTA, cmd, p)
}

// E2CaptureSweep measures the consumer-visible capture cost: the baseline
// reads the normal-world driver through syscalls; the secure deployment
// reads the in-TEE driver through TEEC commands, paying an SMC round trip
// per chunk (Fig-A). Bigger chunks amortize the crossings — the paper's
// §V mitigation.
func E2CaptureSweep() (*metrics.Figure, []E2Point, error) {
	const totalBytes = 64 << 10
	sizes := []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	normal := &metrics.Series{Name: "normal-world driver (syscall reads)", XLabel: "chunk bytes", YLabel: "cycles/KiB"}
	secure := &metrics.Series{Name: "in-TEE driver (TEEC reads)", XLabel: "chunk bytes", YLabel: "cycles/KiB"}
	overhead := &metrics.Series{Name: "secure/normal factor", XLabel: "chunk bytes", YLabel: "factor"}
	var points []E2Point
	for _, size := range sizes {
		n, err := e2NormalRead(size, totalBytes)
		if err != nil {
			return nil, nil, fmt.Errorf("e2 normal %d: %w", size, err)
		}
		s, err := e2SecureRead(size, totalBytes)
		if err != nil {
			return nil, nil, fmt.Errorf("e2 secure %d: %w", size, err)
		}
		normal.Add(float64(size), n)
		secure.Add(float64(size), s)
		overhead.Add(float64(size), s/n)
		points = append(points, E2Point{
			ChunkBytes: size, NormalCycles: n, SecureCycles: s, OverheadFactor: s / n,
		})
	}
	fig := &metrics.Figure{
		Title:  "E2 (Fig-A): consumer-visible capture cost vs chunk size",
		Series: []*metrics.Series{normal, secure, overhead},
	}
	return fig, points, nil
}

// loadSignal queues totalBytes worth of tone in the microphone without
// pushing it onto the bus (the stream may not be started yet).
func (r *driverRig) loadSignal(totalBytes int) {
	seconds := float64(totalBytes) / 2 / 16000
	tone := audio.Sine(16000, 440, 0.4, time.Duration(seconds*float64(time.Second)))
	r.Mic.Load(tone)
}

// loadTone queues totalBytes worth of tone and streams it all into the
// (already enabled) controller FIFO.
func (r *driverRig) loadTone(totalBytes int) {
	r.loadSignal(totalBytes)
	for {
		if _, err := r.Mic.PumpBytes(8192); err != nil {
			break
		}
	}
}

func e2NormalRead(chunk, total int) (float64, error) {
	rig, err := newDriverRig(tz.WorldNormal, chunk)
	if err != nil {
		return 0, err
	}
	kern := kernel.New(rig.Clock, tz.DefaultCostModel(), rig.Plat.Mem)
	kern.RegisterDevice("/dev/i2s0", driver.NewCharDev(rig.Drv, i2s.DefaultFormat()))
	fd, err := kern.Open("/dev/i2s0") // starts the stream; RX now enabled
	if err != nil {
		return 0, err
	}
	rig.loadTone(total)
	defer func() { _ = kern.Close(fd) }()
	start := rig.Clock.Now()
	buf := make([]byte, chunk)
	got := 0
	for got < total {
		n, err := kern.Read(fd, buf[:min(chunk, total-got)])
		if err != nil {
			return 0, err
		}
		if n == 0 {
			break
		}
		got += n
	}
	if got < total {
		return 0, fmt.Errorf("normal read stalled at %d/%d", got, total)
	}
	return float64(rig.Clock.Now()-start) / (float64(total) / 1024), nil
}

func e2SecureRead(chunk, total int) (float64, error) {
	rig, err := newDriverRig(tz.WorldSecure, chunk)
	if err != nil {
		return 0, err
	}
	cost := tz.DefaultCostModel()
	mon := tz.NewMonitor(rig.Clock, cost)
	os := optee.New(mon, rig.Plat.SecureHeap)
	os.RegisterPTA(core.NewDriverPTA(rig.Drv))
	os.RegisterTA(&forwardTA{os: os})

	ctx := teec.InitializeContext(os)
	sess, err := ctx.OpenSession("ta.forward")
	if err != nil {
		return 0, err
	}
	defer func() { _ = ctx.FinalizeContext() }()
	if err := sess.InvokeCommand(core.CmdPTAStart, nil); err != nil {
		return 0, err
	}
	rig.loadTone(total)

	start := rig.Clock.Now()
	buf := make([]byte, chunk)
	got := 0
	for got < total {
		p := &optee.Params{
			{Type: optee.MemrefOut, Buf: buf[:min(chunk, total-got)]},
			{},
		}
		if err := sess.InvokeCommand(core.CmdPTARead, p); err != nil {
			return 0, err
		}
		n := int(p[1].A)
		if n == 0 {
			break
		}
		got += n
	}
	elapsed := rig.Clock.Now() - start
	if got < total {
		return 0, fmt.Errorf("secure read stalled at %d/%d", got, total)
	}
	if err := sess.InvokeCommand(core.CmdPTAStop, nil); err != nil {
		return 0, err
	}
	return float64(elapsed) / (float64(total) / 1024), nil
}
