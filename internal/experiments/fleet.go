package experiments

// E10 (Fig-E / Table-6): fleet scaling. The paper's design is evaluated
// one device at a time; the production question is how the sealed-relay
// architecture behaves when a provider ingests a whole population. E10
// sweeps the fleet size at a fixed shard count and reports, per point,
// wall-clock throughput of the simulator, the virtual per-item latency
// distribution, and the per-mode leakage — demonstrating that the
// privacy separation between baseline and secure-filter deployments is
// preserved (and auditable) at fleet scale.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

// E10Point is one fleet size in the sweep.
type E10Point struct {
	Devices        int
	Shards         int
	ItemsPerSec    float64 // wall-clock simulator throughput
	P50Us          float64 // virtual per-item latency, merged population
	P99Us          float64
	BaselineLeak   float64 // sensitive tokens per baseline speaker
	FilteredLeak   float64 // sensitive tokens per secure-filter speaker
	LostFrames     int
	IngestedFrames uint64
}

// E10FleetScale sweeps the population size at 4 shards.
func E10FleetScale(seed uint64) (*metrics.Table, []E10Point, error) {
	tbl := metrics.NewTable("E10: fleet scaling (4 shards)",
		"devices", "items/s(wall)", "p50(us)", "p99(us)",
		"base leak/dev", "filt leak/dev", "lost frames")
	var points []E10Point
	for _, devices := range []int{8, 16, 32} {
		res, err := fleet.Run(fleet.Config{
			Devices:    devices,
			Shards:     4,
			Utterances: 2,
			Frames:     2,
			Seed:       seed,
			FreqHz:     FreqHz,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fleet of %d: %w", devices, err)
		}
		p := E10Point{
			Devices:        devices,
			Shards:         4,
			ItemsPerSec:    res.Throughput(),
			P50Us:          cyclesToUs(res.Latency.Percentile(50)),
			P99Us:          cyclesToUs(res.Latency.Percentile(99)),
			LostFrames:     res.LostFrames(),
			IngestedFrames: res.IngestedFrames(),
		}
		if g := res.Groups[fleet.GroupKey{Kind: core.DeviceSpeaker, Mode: core.ModeBaseline}]; g != nil {
			p.BaselineLeak = float64(g.SensitiveTokens) / float64(g.Devices)
		}
		if g := res.Groups[fleet.GroupKey{Kind: core.DeviceSpeaker, Mode: core.ModeSecureFilter}]; g != nil {
			p.FilteredLeak = float64(g.SensitiveTokens) / float64(g.Devices)
		}
		points = append(points, p)
		tbl.AddRow(p.Devices, p.ItemsPerSec, p.P50Us, p.P99Us,
			p.BaselineLeak, p.FilteredLeak, p.LostFrames)
	}
	return tbl, points, nil
}
