package experiments

// E10 (Fig-E / Table-6): fleet scaling. The paper's design is evaluated
// one device at a time; the production question is how the sealed-relay
// architecture behaves when a provider ingests a whole population. E10
// sweeps the fleet size at a fixed shard count and reports, per point,
// wall-clock throughput of the simulator, the virtual per-item latency
// distribution, and the per-mode leakage — demonstrating that the
// privacy separation between baseline and secure-filter deployments is
// preserved (and auditable) at fleet scale.

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// E10Point is one fleet size in the sweep.
type E10Point struct {
	Devices        int
	Shards         int
	ItemsPerSec    float64 // wall-clock simulator throughput
	P50Us          float64 // virtual per-item latency, merged population
	P99Us          float64
	BaselineLeak   float64 // sensitive tokens per baseline speaker
	FilteredLeak   float64 // sensitive tokens per secure-filter speaker
	LostFrames     int
	IngestedFrames uint64
}

// E10FleetScale sweeps the population size at 4 shards.
func E10FleetScale(seed uint64) (*metrics.Table, []E10Point, error) {
	tbl := metrics.NewTable("E10: fleet scaling (4 shards)",
		"devices", "items/s(wall)", "p50(us)", "p99(us)",
		"base leak/dev", "filt leak/dev", "lost frames")
	var points []E10Point
	for _, devices := range []int{8, 16, 32} {
		res, err := fleet.Run(fleet.Config{
			Devices:    devices,
			Shards:     4,
			Utterances: 2,
			Frames:     2,
			Seed:       seed,
			FreqHz:     FreqHz,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fleet of %d: %w", devices, err)
		}
		p := E10Point{
			Devices:        devices,
			Shards:         4,
			ItemsPerSec:    res.Throughput(),
			P50Us:          cyclesToUs(res.Latency.Percentile(50)),
			P99Us:          cyclesToUs(res.Latency.Percentile(99)),
			LostFrames:     res.LostFrames(),
			IngestedFrames: res.IngestedFrames(),
		}
		if g := res.Groups[fleet.GroupKey{Kind: core.DeviceSpeaker, Mode: core.ModeBaseline}]; g != nil {
			p.BaselineLeak = float64(g.SensitiveTokens) / float64(g.Devices)
		}
		if g := res.Groups[fleet.GroupKey{Kind: core.DeviceSpeaker, Mode: core.ModeSecureFilter}]; g != nil {
			p.FilteredLeak = float64(g.SensitiveTokens) / float64(g.Devices)
		}
		points = append(points, p)
		tbl.AddRow(p.Devices, p.ItemsPerSec, p.P50Us, p.P99Us,
			p.BaselineLeak, p.FilteredLeak, p.LostFrames)
	}
	return tbl, points, nil
}

// E12Result is the elastic-fleet experiment outcome.
type E12Result struct {
	Devices int
	Joined  int
	Left    int
	// Invariant leg: the non-churned sub-population compared bit-for-bit
	// against a static run of the same seed.
	Compared       int
	AuditIdentical bool
	// Elasticity accounting.
	DrainedShard     string
	AddedShards      int
	RebalancedFrames uint64
	PriorityFrames   uint64
	ShedFrames       uint64
	LostFrames       int
	ItemsPerSec      float64
	// Rollout leg: joiners arrive around a staged rollout and the whole
	// elastic fleet must converge on the published version, which then
	// becomes the ingest floor.
	RolloutConverged bool
	MinVersion       uint64
}

// e12Fingerprint reduces a device result to the audit counters the churn
// invariant protects.
func e12Fingerprint(r *core.DeviceResult) string {
	if r == nil {
		return "<nil>"
	}
	if r.Session != nil {
		a := r.Session.CloudAudit
		return fmt.Sprintf("s:%d/%d/%d/%d/%d", a.Events, a.TokensSeen,
			a.SensitiveTokens, a.AudioBytes, len(r.Session.Utterances))
	}
	c := r.Camera
	return fmt.Sprintf("c:%d/%d/%d/%d", c.Frames, c.PersonFrames,
		c.ForwardedFrames, c.ForwardedPersons)
}

// E12ElasticFleet is the elastic-churn experiment. Leg one: an attested
// 64-device fleet runs once statically and once with 30% joins, 30%
// leaves and a mid-run rebalance (drain shard-00, add a weight-2 shard at
// the halfway point); the claims under test are zero frames lost to the
// rebalance, priority (doorbell/flagged-event) frames never shed, and —
// the invariant — bit-identical audit counters for every device that did
// not churn. Leg two: joiners arrive around a staged model rollout and
// the elastic fleet must still converge on the published version, with
// the verifier's ingest floor raised behind it.
func E12ElasticFleet(seed uint64) (*metrics.Table, E12Result, error) {
	base := fleet.Config{
		Devices:    64,
		Shards:     4,
		Utterances: 2,
		Frames:     2,
		Seed:       seed,
		FreqHz:     FreqHz,
		Attest:     true,
	}
	static, err := fleet.Run(base)
	if err != nil {
		return nil, E12Result{}, fmt.Errorf("static fleet: %w", err)
	}
	elastic := base
	elastic.Churn = &fleet.ChurnSpec{JoinFraction: 0.3, LeaveFraction: 0.3}
	elastic.Rebalance = &fleet.RebalanceSpec{AtFraction: 0.5, DrainShard: 0, AddShards: 1, AddWeight: 2}
	// The invariant leg keeps the fixed (never-shed) policy: a shedding
	// policy's drops depend on host scheduling, and this leg asserts
	// bit-identical audits. Shedding behaviour is pinned by the
	// internal/cloud property tests and the snapshot smoke test.
	res, err := fleet.Run(elastic)
	if err != nil {
		return nil, E12Result{}, fmt.Errorf("elastic fleet: %w", err)
	}

	out := E12Result{
		Devices:          base.Devices,
		Joined:           res.Joined,
		Left:             res.Left,
		AuditIdentical:   true,
		RebalancedFrames: res.RebalancedFrames(),
		PriorityFrames:   res.PriorityFrames(),
		ShedFrames:       res.ShedFrames(),
		LostFrames:       res.LostFrames(),
		ItemsPerSec:      res.Throughput(),
	}
	if res.Rebalance != nil {
		out.DrainedShard = res.Rebalance.DrainedShard
		out.AddedShards = len(res.Rebalance.AddedShards)
	}
	left := make(map[int]bool, len(res.Leavers))
	for _, i := range res.Leavers {
		left[i] = true
	}
	for i := 0; i < base.Devices; i++ {
		if left[i] {
			continue
		}
		if e12Fingerprint(res.DeviceResults[i]) != e12Fingerprint(static.DeviceResults[i]) {
			out.AuditIdentical = false
			break
		}
		out.Compared++
	}

	// Leg two: churned joins against a staged rollout.
	rollout := base
	rollout.Devices = 48
	rollout.Rollout = &fleet.RolloutSpec{CanaryFraction: 0.1}
	rollout.Churn = &fleet.ChurnSpec{JoinFraction: 0.3}
	rres, err := fleet.Run(rollout)
	if err != nil {
		return nil, E12Result{}, fmt.Errorf("elastic rollout fleet: %w", err)
	}
	if rres.Rollout != nil {
		out.RolloutConverged = rres.Rollout.Converged
		out.MinVersion = rres.Rollout.MinVersion
	}

	tbl := metrics.NewTable("E12: elastic fleet (30% churn, mid-run drain + weighted add)",
		"devices", "joined", "left", "non-churned identical", "drained", "added",
		"rebal frames", "prio frames", "shed", "lost", "items/s(wall)",
		"rollout converged", "min-ver")
	tbl.AddRow(out.Devices, out.Joined, out.Left,
		fmt.Sprintf("%v (%d compared)", out.AuditIdentical, out.Compared), out.DrainedShard, out.AddedShards,
		out.RebalancedFrames, out.PriorityFrames, out.ShedFrames, out.LostFrames,
		out.ItemsPerSec, out.RolloutConverged, out.MinVersion)
	if !out.AuditIdentical {
		return tbl, out, fmt.Errorf("elastic fleet: non-churned sub-population diverged from the static run")
	}
	return tbl, out, nil
}

// E13Result is the attestation-lifecycle experiment outcome.
type E13Result struct {
	Devices int
	// Rotation leg: RotateFraction of the fleet's keys rotate mid-run.
	Rotated int
	// Compared non-rotated AND rotated devices bit-identical to a static
	// run (rotation is control plane; the data plane must not notice).
	Compared       int
	AuditIdentical bool
	KeyEpochs      map[uint64]int
	// Revocation leg: devices revoked mid-run, probe frames fired under
	// their identities; every probe must be rejected (not shed).
	Revoked       int
	ProbeAttempts int
	ProbeRejected int
	LostFrames    int
	ItemsPerSec   float64
	// Federation leg: per-tenant verifiers over the same population.
	Tenants        int
	TenantAttested map[string]int
	FederationOK   bool
}

// E13AttestationLifecycle is the attestation-lifecycle experiment.
// Leg one: an attested 64-device fleet runs once statically and once
// with 20% of its keys rotated mid-run (tokens issued before the
// handshake so the whole workload flows inside the rotation's grace
// window) plus 10% of devices revoked after completing; the claims under
// test are zero lost frames, every device's audit counters bit-identical
// to the static run, every rotated device re-attested at epoch 1, and
// every post-revocation probe rejected — not shed — within one frame.
// Leg two: the same population under a per-tenant verifier federation;
// each tenant's verifier must attest exactly its own stripe and the
// frame-conservation invariant must hold unchanged.
func E13AttestationLifecycle(seed uint64) (*metrics.Table, E13Result, error) {
	base := fleet.Config{
		Devices:    64,
		Shards:     4,
		Utterances: 2,
		Frames:     2,
		Seed:       seed,
		FreqHz:     FreqHz,
		Attest:     true,
	}
	static, err := fleet.Run(base)
	if err != nil {
		return nil, E13Result{}, fmt.Errorf("static fleet: %w", err)
	}
	lifecycle := base
	lifecycle.Lifecycle = &fleet.LifecycleSpec{RotateFraction: 0.2, RevokeFraction: 0.1}
	res, err := fleet.Run(lifecycle)
	if err != nil {
		return nil, E13Result{}, fmt.Errorf("lifecycle fleet: %w", err)
	}

	out := E13Result{
		Devices:        base.Devices,
		Rotated:        res.Rotated,
		AuditIdentical: true,
		KeyEpochs:      res.KeyEpochs,
		Revoked:        res.Revoked,
		ProbeAttempts:  res.RevokeProbes,
		ProbeRejected:  res.RevokeRejected,
		LostFrames:     res.LostFrames(),
		ItemsPerSec:    res.Throughput(),
	}
	for i := 0; i < base.Devices; i++ {
		if e12Fingerprint(res.DeviceResults[i]) != e12Fingerprint(static.DeviceResults[i]) {
			out.AuditIdentical = false
			break
		}
		out.Compared++
	}

	// Leg two: per-tenant federation over the same population.
	federated := base
	federated.Tenants = 4
	federated.Federate = true
	fres, err := fleet.Run(federated)
	if err != nil {
		return nil, E13Result{}, fmt.Errorf("federated fleet: %w", err)
	}
	out.Tenants = federated.Tenants
	out.TenantAttested = fres.TenantAttested
	sum := 0
	for _, n := range fres.TenantAttested {
		sum += n
	}
	out.FederationOK = len(fres.TenantAttested) == federated.Tenants &&
		sum == fres.AttestedDevices && fres.LostFrames() == 0

	tbl := metrics.NewTable("E13: attestation lifecycle (20% rotation, 10% revocation, 4-tenant federation)",
		"devices", "rotated", "epoch tally", "revoked", "probes rejected",
		"audit identical", "lost", "items/s(wall)", "tenants", "federation ok")
	tbl.AddRow(out.Devices, out.Rotated, fmt.Sprintf("%v", out.KeyEpochs), out.Revoked,
		fmt.Sprintf("%d/%d", out.ProbeRejected, out.ProbeAttempts),
		fmt.Sprintf("%v (%d compared)", out.AuditIdentical, out.Compared),
		out.LostFrames, out.ItemsPerSec, out.Tenants, out.FederationOK)
	switch {
	case !out.AuditIdentical:
		return tbl, out, fmt.Errorf("lifecycle fleet: audits diverged from the static run")
	case out.LostFrames != 0:
		return tbl, out, fmt.Errorf("lifecycle fleet: lost %d frames", out.LostFrames)
	case out.ProbeRejected != out.ProbeAttempts:
		return tbl, out, fmt.Errorf("lifecycle fleet: %d/%d revocation probes rejected",
			out.ProbeRejected, out.ProbeAttempts)
	case res.RevokeDelivered != 0:
		return tbl, out, fmt.Errorf("lifecycle fleet: %d revocation probes reached an endpoint (gate bypass)",
			res.RevokeDelivered)
	case out.KeyEpochs[1] != out.Rotated:
		return tbl, out, fmt.Errorf("lifecycle fleet: epoch tally %v for %d rotations",
			out.KeyEpochs, out.Rotated)
	case !out.FederationOK:
		return tbl, out, fmt.Errorf("federated fleet: tenant tallies %v inconsistent", out.TenantAttested)
	}
	return tbl, out, nil
}

// E14Result is the frame-telemetry experiment outcome.
type E14Result struct {
	Devices        int
	SampledDevices int
	Spans          uint64
	// Terminal-span tallies at 1-in-1 sampling, which must equal the
	// audit counters bit-exactly (every frame's fate is witnessed by
	// exactly one verdict-bearing span).
	Delivered uint64
	Shed      uint64
	Rejected  uint64
	// The audit side of the equalities.
	IngestedFrames uint64
	ShedFrames     uint64
	RejectedFrames uint64
	// Control-plane telemetry.
	Verbs     map[string]uint64
	Anomalies int
	DumpBytes int
	// RoundTrip reports whether the exported dump parses back into the
	// same verdict counters under the strict grammar.
	RoundTrip   bool
	ItemsPerSec float64
}

// E14FrameTelemetry is the end-to-end telemetry experiment: an attested
// 64-device fleet with mid-run key rotation, revocations (probe frames
// fired under revoked identities), rogue unattested clients and a
// load-shedding admission policy, traced at 1-in-1 sampling. The claim
// under test is trace↔audit consistency: with every device sampled,
// exactly one verdict-bearing span witnesses each frame's fate, so the
// per-verdict span tallies equal the ingest tier's audit counters
// bit-exactly — delivered spans == ingested frames, shed spans == shed
// frames, rejection spans == per-reason rejection counters — and the
// equalities survive a dump/parse round trip under the strict
// metadata-only grammar.
func E14FrameTelemetry(seed uint64) (*metrics.Table, E14Result, error) {
	res, err := fleet.Run(fleet.Config{
		Devices:      64,
		Shards:       4,
		ShardWorkers: 2,
		ShardQueue:   2,
		Utterances:   2,
		Frames:       2,
		Seed:         seed,
		FreqHz:       FreqHz,
		Policy:       "shed",
		Lifecycle:    &fleet.LifecycleSpec{RotateFraction: 0.2, RevokeFraction: 0.1},
		Rogues:       4,
		Trace:        &fleet.TraceSpec{SampleEvery: 1},
	})
	if err != nil {
		return nil, E14Result{}, fmt.Errorf("traced fleet: %w", err)
	}
	tel := res.Telemetry
	if tel == nil {
		return nil, E14Result{}, fmt.Errorf("traced fleet returned no telemetry block")
	}
	out := E14Result{
		Devices:        res.Config.Devices,
		SampledDevices: tel.SampledDevices(),
		Spans:          tel.SpanCount(),
		Delivered:      tel.VerdictCount(obs.VerdictDelivered),
		Shed:           tel.VerdictCount(obs.VerdictShed),
		Rejected:       tel.RejectedCount(),
		IngestedFrames: res.IngestedFrames(),
		ShedFrames:     res.ShedFrames(),
		Verbs:          tel.Verbs,
		Anomalies:      len(tel.Anomalies),
		ItemsPerSec:    res.Throughput(),
	}
	var rejRevoked, rejStale, rejForged, rejPolicy uint64
	for _, s := range res.ShardStats {
		out.RejectedFrames += s.Rejected
		rejRevoked += s.RejectedRevoked
		rejStale += s.RejectedStale
		rejForged += s.RejectedForged
		rejPolicy += s.RejectedPolicy
	}

	var dump bytes.Buffer
	if err := tel.WriteDump(&dump); err != nil {
		return nil, E14Result{}, fmt.Errorf("trace dump: %w", err)
	}
	out.DumpBytes = dump.Len()
	parsed, err := obs.ParseDump(&dump)
	if err != nil {
		return nil, E14Result{}, fmt.Errorf("trace dump does not parse under the strict grammar: %w", err)
	}
	out.RoundTrip = parsed.VerdictCount(obs.VerdictDelivered) == out.Delivered &&
		parsed.VerdictCount(obs.VerdictShed) == out.Shed &&
		parsed.RejectedCount() == out.Rejected

	tbl := metrics.NewTable("E14: frame telemetry (1-in-1 sampling, shed policy, lifecycle + rogues)",
		"devices", "sampled", "spans", "delivered==ingested", "shed==shed",
		"rejected==rejected", "verbs", "anomalies", "dump bytes", "items/s(wall)")
	tbl.AddRow(out.Devices, out.SampledDevices, out.Spans,
		fmt.Sprintf("%d==%d", out.Delivered, out.IngestedFrames),
		fmt.Sprintf("%d==%d", out.Shed, out.ShedFrames),
		fmt.Sprintf("%d==%d", out.Rejected, out.RejectedFrames),
		fmt.Sprintf("%v", out.Verbs), out.Anomalies, out.DumpBytes, out.ItemsPerSec)
	switch {
	case out.SampledDevices != res.Config.Devices+res.Config.Rogues:
		return tbl, out, fmt.Errorf("telemetry: sampled %d of %d clients at 1-in-1",
			out.SampledDevices, res.Config.Devices+res.Config.Rogues)
	case out.Delivered != out.IngestedFrames:
		return tbl, out, fmt.Errorf("telemetry: %d delivered spans vs %d ingested frames",
			out.Delivered, out.IngestedFrames)
	case out.Shed != out.ShedFrames:
		return tbl, out, fmt.Errorf("telemetry: %d shed spans vs %d shed frames",
			out.Shed, out.ShedFrames)
	case out.Rejected != out.RejectedFrames:
		return tbl, out, fmt.Errorf("telemetry: %d rejection spans vs %d rejected frames",
			out.Rejected, out.RejectedFrames)
	case tel.VerdictCount(obs.VerdictRejectedRevoked) != rejRevoked ||
		tel.VerdictCount(obs.VerdictRejectedStale) != rejStale ||
		tel.VerdictCount(obs.VerdictRejectedForged) != rejForged ||
		tel.VerdictCount(obs.VerdictRejectedPolicy) != rejPolicy:
		return tbl, out, fmt.Errorf("telemetry: per-reason rejection spans diverge from shard counters")
	case out.Verbs[obs.VerbRotate] != uint64(res.Rotated):
		return tbl, out, fmt.Errorf("telemetry: %d rotate verbs vs %d rotations",
			out.Verbs[obs.VerbRotate], res.Rotated)
	case out.Verbs[obs.VerbRevoke] != uint64(res.Revoked):
		return tbl, out, fmt.Errorf("telemetry: %d revoke verbs vs %d revocations",
			out.Verbs[obs.VerbRevoke], res.Revoked)
	case res.Revoked > 0 && out.Anomalies == 0:
		return tbl, out, fmt.Errorf("telemetry: revocations occurred but no anomaly was recorded")
	case !out.RoundTrip:
		return tbl, out, fmt.Errorf("telemetry: dump round trip changed the verdict tallies")
	}
	return tbl, out, nil
}

// E11Result is the attested-rollout experiment outcome.
type E11Result struct {
	Devices         int
	AttestedDevices int
	Canary          int
	ToVersion       uint64
	Converged       bool
	VersionCounts   map[uint64]int
	ItemsPerSec     float64
	LostFrames      int
	// Adversarial-ingest outcome: every rogue frame must be rejected at
	// the shard frontend and none may reach an endpoint.
	RogueAttempts      int
	RogueRejected      int
	UnattestedIngested int
}

// E11AttestedRollout runs the attested fleet with a staged (10% canary →
// full fleet) model rollout and adversarial unattested clients. The
// claims under test: no unattested event is ever ingested (the shard
// admission gate backs the attestation verifier), the fleet converges on
// the published model version with zero lost frames, and the handshake +
// rollout control plane does not disturb the data plane's privacy audit.
func E11AttestedRollout(seed uint64) (*metrics.Table, E11Result, error) {
	res, err := fleet.Run(fleet.Config{
		Devices:    64,
		Shards:     4,
		Utterances: 2,
		Frames:     2,
		Seed:       seed,
		FreqHz:     FreqHz,
		Rollout:    &fleet.RolloutSpec{CanaryFraction: 0.1},
		Rogues:     4,
	})
	if err != nil {
		return nil, E11Result{}, fmt.Errorf("attested fleet: %w", err)
	}
	out := E11Result{
		Devices:            res.Config.Devices,
		AttestedDevices:    res.AttestedDevices,
		ItemsPerSec:        res.Throughput(),
		LostFrames:         res.LostFrames(),
		VersionCounts:      res.ModelVersions,
		RogueAttempts:      res.RogueAttempts,
		RogueRejected:      res.RogueRejected,
		UnattestedIngested: res.UnattestedIngested,
	}
	if res.Rollout != nil {
		out.Canary = res.Rollout.Canary
		out.ToVersion = res.Rollout.ToVersion
		out.Converged = res.Rollout.Converged
	}
	tbl := metrics.NewTable("E11: attested rollout (10% canary, 4 rogues)",
		"devices", "attested", "canary", "to-ver", "converged",
		"items/s(wall)", "lost frames", "rogue rej/att", "unattested ingested")
	tbl.AddRow(out.Devices, out.AttestedDevices, out.Canary, out.ToVersion, out.Converged,
		out.ItemsPerSec, out.LostFrames,
		fmt.Sprintf("%d/%d", out.RogueRejected, out.RogueAttempts), out.UnattestedIngested)
	return tbl, out, nil
}

// E15Result is the deterministic-chaos experiment outcome.
type E15Result struct {
	Devices int
	Touched int
	// Replay leg: the same crash-free chaos plan run twice must produce
	// bit-identical per-device audits and identical injection counters.
	Replayable bool
	Injected   uint64
	Expired    int
	// Conservation: expected == ingested + shed + expired on every leg
	// (LostFrames stays 0 through the whole chaos plan).
	LostCalm, LostReplay, LostCrash int
	// Identity: devices with zero expired events must be bit-identical to
	// the fault-free run (Compared of them were; includes every untouched
	// device), and every expired device must be one the plan touches.
	Compared              int
	AuditIdentical        bool
	ExpiredOutsideTouched int
	// Crash leg: scheduled shard crashes healed by the supervisor.
	Crashes           int
	Restarts          uint64
	QueuedAtCrash     int
	Recovered         uint64
	Duplicates        uint64
	DuplicatesDropped uint64
	Retries           uint64
	RetryRecovered    uint64
	TEEFaults         int
	ItemsPerSec       float64
}

// expiredEvents counts one device's explicit expiries.
func expiredEvents(r *core.DeviceResult) int {
	if r == nil {
		return 0
	}
	if r.Session != nil {
		return r.Session.ExpiredEvents
	}
	return r.Camera.ExpiredFrames
}

// E15ChaosFleet is the deterministic-chaos experiment. A fault-free
// attested fleet is the reference; leg one replays a crash-free chaos
// plan (seeded uplink drops, duplicates, delays and expiry blackholes on
// half the population, plus stragglers, a slow shard and transient TEE
// provisioning errors) twice and demands bit-identical per-device audits
// between the two runs; leg two adds scheduled shard crashes under live
// traffic. The claims under test: the conservation identity expected ==
// ingested + shed + expired holds on every leg (zero lost frames through
// crashes, drops and duplicates), every crash is healed by exactly one
// supervised restart that replays the frames stranded in the dead
// shard's queue, injected duplicates never double-count an audit, only
// plan-touched devices ever expire a frame, and every device with zero
// expiries — the whole untouched sub-population included — is
// bit-identical to the fault-free run.
func E15ChaosFleet(seed uint64) (*metrics.Table, E15Result, error) {
	base := fleet.Config{
		Devices:    64,
		Shards:     4,
		Utterances: 3,
		Frames:     3,
		Seed:       seed,
		FreqHz:     FreqHz,
		Attest:     true,
	}
	calm, err := fleet.Run(base)
	if err != nil {
		return nil, E15Result{}, fmt.Errorf("fault-free fleet: %w", err)
	}

	// Leg one: crash-free chaos, twice. Without crashes every delivery
	// decision is a pure function of per-device seeded streams, so the
	// two runs must agree bit-for-bit.
	spec := fleet.FaultSpec{
		TouchFraction: 0.5,
		DropRate:      0.2,
		DuplicateRate: 0.15,
		DelayRate:     0.1,
		ExpireRate:    0.1,
		SlowFraction:  0.25,
		TEEFraction:   0.25,
		SlowShard:     1,
	}
	chaos := base
	chaos.Faults = &spec
	replayA, err := fleet.Run(chaos)
	if err != nil {
		return nil, E15Result{}, fmt.Errorf("chaos fleet (replay A): %w", err)
	}
	chaos = base
	specB := spec
	chaos.Faults = &specB
	replayB, err := fleet.Run(chaos)
	if err != nil {
		return nil, E15Result{}, fmt.Errorf("chaos fleet (replay B): %w", err)
	}

	// Leg two: the same injection mix with two scheduled shard crashes.
	// Crash timing interleaves with live traffic under wall-clock
	// scheduling, so this leg asserts the recovery invariants rather than
	// bit-replay.
	specC := spec
	specC.Crashes = 2
	chaos = base
	chaos.Faults = &specC
	crash, err := fleet.Run(chaos)
	if err != nil {
		return nil, E15Result{}, fmt.Errorf("chaos fleet (crashes): %w", err)
	}
	if replayA.Faults == nil || crash.Faults == nil {
		return nil, E15Result{}, fmt.Errorf("chaos fleet returned no fault report")
	}

	out := E15Result{
		Devices:           base.Devices,
		Touched:           replayA.Faults.Touched,
		Replayable:        true,
		Injected:          replayA.Faults.Injected,
		Expired:           replayA.Faults.Expired,
		LostCalm:          calm.LostFrames(),
		LostReplay:        replayA.LostFrames(),
		LostCrash:         crash.LostFrames(),
		AuditIdentical:    true,
		Crashes:           crash.Faults.Crashes,
		Restarts:          crash.Faults.Restarts,
		QueuedAtCrash:     crash.Faults.QueuedAtCrash,
		Recovered:         crash.Faults.Recovered,
		Duplicates:        crash.Faults.Duplicates,
		DuplicatesDropped: crash.Faults.DuplicatesDropped,
		Retries:           crash.Faults.Retries,
		RetryRecovered:    crash.Faults.RetryRecovered,
		TEEFaults:         crash.Faults.TEEFaults,
		ItemsPerSec:       crash.Throughput(),
	}

	// Bit-replay: every device, injected or not, agrees across the two
	// crash-free chaos runs; the plan's counters agree too.
	a, b := replayA.Faults, replayB.Faults
	if a.Injected != b.Injected || a.Drops != b.Drops || a.Duplicates != b.Duplicates ||
		a.Delays != b.Delays || a.Blackholes != b.Blackholes || a.Expired != b.Expired {
		out.Replayable = false
	}
	for i := range replayA.DeviceResults {
		if e12Fingerprint(replayA.DeviceResults[i]) != e12Fingerprint(replayB.DeviceResults[i]) {
			out.Replayable = false
			break
		}
	}

	// Identity vs the fault-free run, and expiry containment, on both
	// chaos legs.
	touched := make(map[int]bool, len(replayA.Faults.TouchedDevices))
	for _, i := range replayA.Faults.TouchedDevices {
		touched[i] = true
	}
	for _, res := range []*fleet.Result{replayA, crash} {
		for i := range res.DeviceResults {
			if expiredEvents(res.DeviceResults[i]) > 0 {
				if !touched[i] {
					out.ExpiredOutsideTouched++
				}
				continue
			}
			if e12Fingerprint(res.DeviceResults[i]) != e12Fingerprint(calm.DeviceResults[i]) {
				out.AuditIdentical = false
			} else {
				out.Compared++
			}
		}
	}

	tbl := metrics.NewTable("E15: deterministic chaos (50% touched, drops+dups+delays+expiries, 2 crashes)",
		"devices", "touched", "replayable", "injected", "expired",
		"lost calm/replay/crash", "identical", "crashes", "restarts",
		"queued@crash", "recovered", "dups inj/dropped", "retries", "tee faults", "items/s(wall)")
	tbl.AddRow(out.Devices, out.Touched, out.Replayable, out.Injected, out.Expired,
		fmt.Sprintf("%d/%d/%d", out.LostCalm, out.LostReplay, out.LostCrash),
		fmt.Sprintf("%v (%d compared)", out.AuditIdentical, out.Compared),
		out.Crashes, out.Restarts, out.QueuedAtCrash, out.Recovered,
		fmt.Sprintf("%d/%d", out.Duplicates, out.DuplicatesDropped),
		out.Retries, out.TEEFaults, out.ItemsPerSec)

	switch {
	case !out.Replayable:
		return tbl, out, fmt.Errorf("chaos: two runs of the same crash-free plan diverged")
	case out.LostCalm != 0 || out.LostReplay != 0 || out.LostCrash != 0:
		return tbl, out, fmt.Errorf("chaos: lost frames %d/%d/%d (calm/replay/crash), want 0",
			out.LostCalm, out.LostReplay, out.LostCrash)
	case out.ExpiredOutsideTouched != 0:
		return tbl, out, fmt.Errorf("chaos: %d devices outside the plan's touched set expired frames",
			out.ExpiredOutsideTouched)
	case !out.AuditIdentical:
		return tbl, out, fmt.Errorf("chaos: a zero-expiry device diverged from the fault-free run")
	case out.Crashes != 2 || out.Restarts != uint64(out.Crashes):
		return tbl, out, fmt.Errorf("chaos: %d crashes healed by %d restarts, want 2/2",
			out.Crashes, out.Restarts)
	case out.Recovered != uint64(out.QueuedAtCrash):
		return tbl, out, fmt.Errorf("chaos: %d frames stranded at crash but %d replayed",
			out.QueuedAtCrash, out.Recovered)
	case out.DuplicatesDropped > out.Duplicates:
		return tbl, out, fmt.Errorf("chaos: dedup dropped %d frames but only %d duplicates were injected",
			out.DuplicatesDropped, out.Duplicates)
	case out.Expired == 0:
		return tbl, out, fmt.Errorf("chaos: expiry blackholes injected but no frame expired")
	case out.TEEFaults == 0:
		return tbl, out, fmt.Errorf("chaos: TEE fault fraction set but no device hit one")
	}
	return tbl, out, nil
}

// E16Result is the cross-device batch-scheduler experiment outcome.
type E16Result struct {
	Devices int
	Joined  int
	Left    int
	Rotated int
	// Equivalence leg: every device of the scheduled run compared
	// bit-for-bit against the per-device-classify run of the same seed.
	Compared       int
	AuditIdentical bool
	// Scheduler accounting.
	Batches             uint64
	BatchedItems        uint64
	MeanOccupancy       float64
	MaxOccupancy        int
	MixedVersionFlushes uint64
	PressureFlushes     uint64
	LostFrames          int
	ItemsPerSec         float64
	// Rollout leg: canaries classify on the target version's queue while
	// the stable cohort stays on the base queue; the fleet still
	// converges and the ingest floor rises.
	RolloutConverged bool
	MinVersion       uint64
}

// E16BatchScheduler is the shared-TEE batch-scheduler experiment. The
// same elastic fleet — churn, mid-run key rotations, a staged model
// rollout — runs twice: once on the per-device classify path and once
// with every secure-filter speaker submitting to the shared cross-device
// scheduler (per-model-version queues, flush on batch-full or max-age).
// The claims under test: every device's audit counters are bit-identical
// between the two runs (batching is latency machinery, never a
// correctness knob), no flush ever mixes model versions, the scheduler
// actually coalesces (flushes above occupancy 1), zero frames are lost,
// and the rollout still converges with the ingest floor raised.
func E16BatchScheduler(seed uint64) (*metrics.Table, E16Result, error) {
	base := fleet.Config{
		Devices:    48,
		Shards:     4,
		Utterances: 3,
		Frames:     2,
		Seed:       seed,
		FreqHz:     FreqHz,
		Rollout:    &fleet.RolloutSpec{CanaryFraction: 0.2},
		Churn:      &fleet.ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25},
		Lifecycle:  &fleet.LifecycleSpec{RotateFraction: 0.25},
	}
	plain, err := fleet.Run(base)
	if err != nil {
		return nil, E16Result{}, fmt.Errorf("per-device fleet: %w", err)
	}
	scheduled := base
	scheduled.Churn = &fleet.ChurnSpec{JoinFraction: 0.25, LeaveFraction: 0.25}
	scheduled.Sched = &fleet.SchedSpec{}
	res, err := fleet.Run(scheduled)
	if err != nil {
		return nil, E16Result{}, fmt.Errorf("scheduled fleet: %w", err)
	}
	if res.Sched == nil {
		return nil, E16Result{}, fmt.Errorf("scheduled fleet returned no scheduler report")
	}

	out := E16Result{
		Devices:             base.Devices,
		Joined:              res.Joined,
		Left:                res.Left,
		Rotated:             res.Rotated,
		AuditIdentical:      true,
		Batches:             res.Sched.Batches,
		BatchedItems:        res.Sched.Items,
		MeanOccupancy:       res.Sched.MeanOccupancy,
		MaxOccupancy:        res.Sched.MaxOccupancy,
		MixedVersionFlushes: res.Sched.MixedVersionFlushes,
		PressureFlushes:     res.Sched.PressureFlushes,
		LostFrames:          res.LostFrames(),
		ItemsPerSec:         res.Throughput(),
	}
	if res.Rollout != nil {
		out.RolloutConverged = res.Rollout.Converged
		out.MinVersion = res.Rollout.MinVersion
	}
	if len(res.DeviceResults) != len(plain.DeviceResults) {
		return nil, out, fmt.Errorf("population diverged: %d vs %d devices",
			len(res.DeviceResults), len(plain.DeviceResults))
	}
	for i := range plain.DeviceResults {
		if e12Fingerprint(res.DeviceResults[i]) != e12Fingerprint(plain.DeviceResults[i]) {
			out.AuditIdentical = false
			continue
		}
		out.Compared++
	}

	tbl := metrics.NewTable("E16: cross-device batch scheduler (48 devices, churn + rotation + rollout)",
		"devices", "joined/left/rotated", "identical", "batches", "items",
		"occupancy mean/max", "mixed-version", "lost frames", "converged@floor", "items/s(wall)")
	tbl.AddRow(out.Devices,
		fmt.Sprintf("%d/%d/%d", out.Joined, out.Left, out.Rotated),
		fmt.Sprintf("%v (%d compared)", out.AuditIdentical, out.Compared),
		out.Batches, out.BatchedItems,
		fmt.Sprintf("%.2f/%d", out.MeanOccupancy, out.MaxOccupancy),
		out.MixedVersionFlushes, out.LostFrames,
		fmt.Sprintf("%v@v%d", out.RolloutConverged, out.MinVersion),
		out.ItemsPerSec)

	switch {
	case !out.AuditIdentical:
		return tbl, out, fmt.Errorf("scheduler: a device's audit diverged from the per-device classify run")
	case out.LostFrames != 0:
		return tbl, out, fmt.Errorf("scheduler: lost %d frames, want 0", out.LostFrames)
	case out.MixedVersionFlushes != 0:
		return tbl, out, fmt.Errorf("scheduler: %d flushes mixed model versions", out.MixedVersionFlushes)
	case out.Batches == 0 || out.BatchedItems == 0:
		return tbl, out, fmt.Errorf("scheduler: classified nothing (%d batches, %d items)",
			out.Batches, out.BatchedItems)
	case out.MaxOccupancy <= 1:
		return tbl, out, fmt.Errorf("scheduler: never coalesced (max occupancy %d)", out.MaxOccupancy)
	case out.Joined == 0 || out.Left == 0 || out.Rotated == 0:
		return tbl, out, fmt.Errorf("scheduler: churn/rotation did not fire (joined %d, left %d, rotated %d)",
			out.Joined, out.Left, out.Rotated)
	case !out.RolloutConverged:
		return tbl, out, fmt.Errorf("scheduler: rollout did not converge")
	}
	return tbl, out, nil
}
