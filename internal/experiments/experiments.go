// Package experiments implements the evaluation suite E1–E9 defined in
// DESIGN.md §5 — the concrete instantiation of the evaluation the paper
// promises but does not report (it is a doctoral-forum proposal; §III
// states experiments are future work). Each experiment returns both
// structured results and renderable tables/figures; cmd/periguard-bench
// prints them and bench_test.go wraps them as Go benchmarks.
//
// All experiments are deterministic for a fixed seed: latencies are
// virtual cycles from the platform cost model, not wall-clock noise.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/audio"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/ftrace"
	"repro/internal/i2s"
	"repro/internal/memory"
	"repro/internal/ml/classify"
	"repro/internal/peripheral"
	"repro/internal/relay"
	"repro/internal/sensitive"
	"repro/internal/tz"
)

// DefaultSeed fixes the whole suite.
const DefaultSeed uint64 = 42

// FreqHz is the modelled core frequency (1 GHz: cycles ≈ ns).
const FreqHz = 1_000_000_000

// cyclesToUs converts virtual cycles to microseconds at FreqHz.
func cyclesToUs(c float64) float64 { return c / (FreqHz / 1e6) }

// sessionWorkload is the standard labelled utterance mix.
func sessionWorkload(n int, seed uint64) ([]sensitive.Utterance, error) {
	return sensitive.Generate(sensitive.GenConfig{
		N: n, SensitiveFraction: 0.4, Seed: seed,
	})
}

// driverRig is a standalone capture stack in one world (E2/E6 use it
// without the full pipeline).
type driverRig struct {
	Clock  *tz.Clock
	Plat   *memory.Platform
	Ctrl   *i2s.Controller
	Drv    *driver.SoundDriver
	Mic    *peripheral.Microphone
	Tracer *ftrace.Tracer
}

const rigCtrlBase = 0x7000_9000

func newDriverRig(world tz.World, bufBytes int) (*driverRig, error) {
	plat, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		return nil, err
	}
	clock := tz.NewClock()
	cost := tz.DefaultCostModel()
	b := bus.New(clock, cost)
	ctrl := i2s.NewController("i2s0", 1<<18)
	if err := b.Map(rigCtrlBase, i2s.RegSize, world == tz.WorldSecure, ctrl); err != nil {
		return nil, err
	}
	heap := plat.DMAHeap
	if world == tz.WorldSecure {
		heap = plat.SecureHeap
	}
	tracer := ftrace.New(clock)
	drv, err := driver.New(driver.Config{
		Name:     "i2s0-" + world.String(),
		World:    world,
		Bus:      b,
		Ctrl:     ctrl,
		CtrlBase: rigCtrlBase,
		DMA:      bus.NewDMA(clock, cost, plat.Mem),
		Mem:      plat.Mem,
		Heap:     heap,
		Clock:    clock,
		Cost:     cost,
		Tracer:   tracer,
		BufBytes: bufBytes,
	})
	if err != nil {
		return nil, err
	}
	mic, err := peripheral.NewMicrophone(ctrl, i2s.DefaultFormat())
	if err != nil {
		return nil, err
	}
	return &driverRig{Clock: clock, Plat: plat, Ctrl: ctrl, Drv: drv, Mic: mic, Tracer: tracer}, nil
}

// captureBytes runs one capture of total bytes through the rig and
// returns the virtual cycles it consumed.
func (r *driverRig) captureBytes(total int) (tz.Cycles, error) {
	seconds := float64(total) / 2 / 16000
	tone := audio.Sine(16000, 440, 0.4, time.Duration(seconds*float64(time.Second)))
	r.Mic.Load(tone)
	start := r.Clock.Now()
	_, err := r.Drv.CaptureTask(i2s.DefaultFormat(), total, func(need int) {
		n := need
		if n > 4096 {
			n = 4096
		}
		_, _ = r.Mic.PumpBytes(n)
	})
	if err != nil {
		return 0, err
	}
	return r.Clock.Now() - start, nil
}

// sessionOpts bundles the per-mode knobs of a standard session.
type sessionOpts struct {
	policy relay.Policy
	arch   classify.Arch
}

// modeSession builds a system for the mode and runs a standard session.
func modeSession(mode core.Mode, opts sessionOpts, n int, seed uint64) (*core.SessionResult, error) {
	sys, err := core.NewSystem(core.Config{
		Mode:   mode,
		Policy: opts.policy,
		Arch:   opts.arch,
		Seed:   seed,
		FreqHz: FreqHz,
	})
	if err != nil {
		return nil, fmt.Errorf("%v system: %w", mode, err)
	}
	utts, err := sessionWorkload(n, seed+7)
	if err != nil {
		return nil, err
	}
	res, err := sys.RunSession(utts)
	if err != nil {
		return nil, fmt.Errorf("%v session: %w", mode, err)
	}
	return res, nil
}
