package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ml/classify"
	"repro/internal/power"
	"repro/internal/relay"
	"repro/internal/sensitive"
)

// sessionN is the standard session length for pipeline experiments.
const sessionN = 10

// E4Row is one mode's latency decomposition (Fig-B).
type E4Row struct {
	Mode        core.Mode
	Capture     float64 // mean cycles per utterance
	Transcribe  float64
	Classify    float64
	Relay       float64
	Total       float64
	OverheadPct float64 // vs baseline total
}

// E4PipelineBreakdown decomposes end-to-end utterance latency per stage
// per deployment mode.
func E4PipelineBreakdown(seed uint64) (*metrics.Table, []E4Row, error) {
	modes := []struct {
		mode core.Mode
		opts sessionOpts
	}{
		{core.ModeBaseline, sessionOpts{policy: relay.PolicyPassThrough}},
		{core.ModeSecureNoFilter, sessionOpts{policy: relay.PolicyPassThrough}},
		{core.ModeSecureFilter, sessionOpts{policy: relay.PolicyBlock, arch: classify.ArchCNN}},
	}
	var rows []E4Row
	var baseTotal float64
	tbl := metrics.NewTable("E4 (Fig-B): per-utterance latency decomposition (kcycles)",
		"mode", "capture", "transcribe", "classify", "relay", "total", "overhead")
	for _, m := range modes {
		res, err := modeSession(m.mode, m.opts, sessionN, seed)
		if err != nil {
			return nil, nil, err
		}
		var agg core.StageCycles
		for _, u := range res.Utterances {
			agg.Capture += u.Stages.Capture
			agg.Transcribe += u.Stages.Transcribe
			agg.Classify += u.Stages.Classify
			agg.Relay += u.Stages.Relay
		}
		n := float64(len(res.Utterances))
		row := E4Row{
			Mode:       m.mode,
			Capture:    float64(agg.Capture) / n,
			Transcribe: float64(agg.Transcribe) / n,
			Classify:   float64(agg.Classify) / n,
			Relay:      float64(agg.Relay) / n,
			Total:      res.Latency.Mean(),
		}
		if m.mode == core.ModeBaseline {
			baseTotal = row.Total
		}
		if baseTotal > 0 {
			row.OverheadPct = 100 * (row.Total - baseTotal) / baseTotal
		}
		rows = append(rows, row)
		tbl.AddRow(m.mode.String(), row.Capture/1000, row.Transcribe/1000,
			row.Classify/1000, row.Relay/1000, row.Total/1000,
			fmt.Sprintf("%+.0f%%", row.OverheadPct))
	}
	return tbl, rows, nil
}

// E5Row is one deployment's privacy outcome (Table-3).
type E5Row struct {
	Label             string
	Mode              core.Mode
	Policy            relay.Policy
	CloudSensTokens   int
	CloudTokens       int
	CloudAudioBytes   int
	SnoopRecovered    int
	SupplicantLeaks   int
	FalseBlockRatePct float64
}

// E5Leakage measures sensitive-token leakage to the cloud and to the
// compromised OS across deployments — the paper's central privacy claim.
func E5Leakage(seed uint64) (*metrics.Table, []E5Row, error) {
	cases := []struct {
		label string
		mode  core.Mode
		opts  sessionOpts
	}{
		{"baseline (raw audio)", core.ModeBaseline, sessionOpts{policy: relay.PolicyPassThrough}},
		{"secure, no filter", core.ModeSecureNoFilter, sessionOpts{policy: relay.PolicyPassThrough}},
		{"secure + filter/block", core.ModeSecureFilter, sessionOpts{policy: relay.PolicyBlock, arch: classify.ArchCNN}},
		{"secure + filter/redact", core.ModeSecureFilter, sessionOpts{policy: relay.PolicyRedact, arch: classify.ArchCNN}},
	}
	var rows []E5Row
	tbl := metrics.NewTable("E5 (Table-3): privacy leakage per deployment",
		"deployment", "cloud sens. tokens", "cloud tokens", "cloud audio B",
		"OS snoop B", "supplicant leaks", "false-block %")
	for _, c := range cases {
		res, err := modeSession(c.mode, c.opts, sessionN, seed)
		if err != nil {
			return nil, nil, err
		}
		row := E5Row{
			Label:             c.label,
			Mode:              c.mode,
			Policy:            c.opts.policy,
			CloudSensTokens:   res.CloudAudit.SensitiveTokens,
			CloudTokens:       res.CloudAudit.TokensSeen,
			CloudAudioBytes:   res.CloudAudit.AudioBytes,
			SnoopRecovered:    res.Snoop.BytesRecovered,
			SupplicantLeaks:   res.SupplicantPlaintextTokens,
			FalseBlockRatePct: 100 * res.FalseBlockRate(),
		}
		rows = append(rows, row)
		tbl.AddRow(c.label, row.CloudSensTokens, row.CloudTokens, row.CloudAudioBytes,
			row.SnoopRecovered, row.SupplicantLeaks, row.FalseBlockRatePct)
	}
	return tbl, rows, nil
}

// E7Row is one mode's energy breakdown (Fig-C).
type E7Row struct {
	Mode        core.Mode
	ComputeMJ   float64
	RadioMJ     float64
	TotalMJ     float64
	OverheadPct float64 // compute energy vs baseline
}

// E7Energy prices each deployment's session under the power model: the
// paper predicts "increased power consumption" for the TEE design; the
// experiment shows where it lands (compute up, radio down).
func E7Energy(seed uint64) (*metrics.Table, []E7Row, error) {
	modes := []struct {
		mode core.Mode
		opts sessionOpts
	}{
		{core.ModeBaseline, sessionOpts{policy: relay.PolicyPassThrough}},
		{core.ModeSecureNoFilter, sessionOpts{policy: relay.PolicyPassThrough}},
		{core.ModeSecureFilter, sessionOpts{policy: relay.PolicyBlock, arch: classify.ArchCNN}},
	}
	var rows []E7Row
	var baseCompute float64
	tbl := metrics.NewTable("E7 (Fig-C): session energy per deployment (mJ)",
		"mode", "compute", "radio", "idle+dma", "total", "compute overhead")
	for _, m := range modes {
		res, err := modeSession(m.mode, m.opts, sessionN, seed)
		if err != nil {
			return nil, nil, err
		}
		compute := res.Energy.CPUmJ + res.Energy.SecuremJ + res.Energy.SwitchmJ
		row := E7Row{
			Mode:      m.mode,
			ComputeMJ: compute,
			RadioMJ:   res.Energy.RadiomJ,
			TotalMJ:   res.Energy.TotalmJ(),
		}
		if m.mode == core.ModeBaseline {
			baseCompute = compute
		}
		if baseCompute > 0 {
			row.OverheadPct = 100 * (compute - baseCompute) / baseCompute
		}
		rows = append(rows, row)
		tbl.AddRow(m.mode.String(), row.ComputeMJ, row.RadioMJ,
			row.TotalMJ-row.ComputeMJ-row.RadioMJ, row.TotalMJ,
			fmt.Sprintf("%+.0f%%", row.OverheadPct))
	}
	return tbl, rows, nil
}

// E8Row is one deployment's snooping outcome (Table-5).
type E8Row struct {
	Mode           core.Mode
	Attempts       int
	Blocked        int
	BytesRecovered int
	SuccessRatePct float64
}

// E8Snoop measures the compromised-OS buffer-snooping attack success rate
// across deployments (paper §I threat: "privileged software like the OS
// can be compromised").
func E8Snoop(seed uint64) (*metrics.Table, []E8Row, error) {
	modes := []core.Mode{core.ModeBaseline, core.ModeSecureNoFilter, core.ModeSecureFilter}
	var rows []E8Row
	tbl := metrics.NewTable("E8 (Table-5): compromised-OS buffer snooping",
		"mode", "attempts", "blocked", "bytes recovered", "success rate")
	for _, mode := range modes {
		opts := sessionOpts{policy: relay.PolicyPassThrough}
		if mode == core.ModeSecureFilter {
			opts = sessionOpts{policy: relay.PolicyBlock, arch: classify.ArchCNN}
		}
		res, err := modeSession(mode, opts, sessionN, seed)
		if err != nil {
			return nil, nil, err
		}
		row := E8Row{
			Mode:           mode,
			Attempts:       res.Snoop.Attempts,
			Blocked:        res.Snoop.Blocked,
			BytesRecovered: res.Snoop.BytesRecovered,
		}
		if row.Attempts > 0 {
			row.SuccessRatePct = 100 * float64(row.Attempts-row.Blocked) / float64(row.Attempts)
		}
		rows = append(rows, row)
		tbl.AddRow(mode.String(), row.Attempts, row.Blocked, row.BytesRecovered,
			fmt.Sprintf("%.0f%%", row.SuccessRatePct))
	}
	return tbl, rows, nil
}

// E9Point is one concurrency level's aggregate throughput (Fig-D).
type E9Point struct {
	Devices          int
	BaselineKBPerSec float64 // aggregate captured KiB per virtual second
	SecureKBPerSec   float64
}

// E9Scale runs K independent devices concurrently (each with its own
// virtual platform) and reports aggregate capture throughput, probing the
// paper's §IV.6 goal of generalizing to "a larger and more generic set of
// peripherals".
func E9Scale(seed uint64) (*metrics.Figure, []E9Point, error) {
	levels := []int{1, 2, 4, 8}
	baseSeries := &metrics.Series{Name: "baseline", XLabel: "devices", YLabel: "KiB/s aggregate"}
	secSeries := &metrics.Series{Name: "secure-filter", XLabel: "devices", YLabel: "KiB/s aggregate"}
	var points []E9Point
	for _, k := range levels {
		baseTP, err := aggregateThroughput(core.ModeBaseline, sessionOpts{policy: relay.PolicyPassThrough}, k, seed)
		if err != nil {
			return nil, nil, err
		}
		secTP, err := aggregateThroughput(core.ModeSecureFilter, sessionOpts{policy: relay.PolicyBlock, arch: classify.ArchCNN}, k, seed)
		if err != nil {
			return nil, nil, err
		}
		baseSeries.Add(float64(k), baseTP)
		secSeries.Add(float64(k), secTP)
		points = append(points, E9Point{Devices: k, BaselineKBPerSec: baseTP, SecureKBPerSec: secTP})
	}
	fig := &metrics.Figure{
		Title:  "E9 (Fig-D): aggregate capture throughput vs device count",
		Series: []*metrics.Series{baseSeries, secSeries},
	}
	return fig, points, nil
}

func aggregateThroughput(mode core.Mode, opts sessionOpts, devices int, seed uint64) (float64, error) {
	type outcome struct {
		bytes   uint64
		seconds float64
		err     error
	}
	results := make([]outcome, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			res, err := modeSession(mode, opts, 4, seed+uint64(d)*101)
			if err != nil {
				results[d] = outcome{err: err}
				return
			}
			results[d] = outcome{
				bytes:   captureBytesOf(res),
				seconds: float64(res.TotalCycles) / FreqHz,
			}
		}(d)
	}
	wg.Wait()
	var totalKiB, maxSeconds float64
	for _, r := range results {
		if r.err != nil {
			return 0, r.err
		}
		totalKiB += float64(r.bytes) / 1024
		if r.seconds > maxSeconds {
			maxSeconds = r.seconds
		}
	}
	if maxSeconds == 0 {
		return 0, fmt.Errorf("e9: zero virtual time")
	}
	return totalKiB / maxSeconds, nil
}

// captureBytesOf estimates the audio bytes a session captured from its
// utterance ground truth (words × per-word duration at 16 kHz × 2 B).
func captureBytesOf(res *core.SessionResult) uint64 {
	var total uint64
	for _, u := range res.Utterances {
		words := len(u.Truth.Words)
		// DefaultVoice: 220 ms per word + 120 ms gaps (words+1 gaps).
		ms := words*220 + (words+1)*120
		total += uint64(ms) * 16 * 2 // 16 samples/ms, 2 bytes each
	}
	return total
}

// E5Baseline is a convenience wrapper used by benchmarks: it returns only
// the baseline row of E5.
func E5Baseline(seed uint64) (E5Row, error) {
	res, err := modeSession(core.ModeBaseline, sessionOpts{policy: relay.PolicyPassThrough}, sessionN, seed)
	if err != nil {
		return E5Row{}, err
	}
	return E5Row{
		Label:           "baseline",
		Mode:            core.ModeBaseline,
		CloudSensTokens: res.CloudAudit.SensitiveTokens,
		SnoopRecovered:  res.Snoop.BytesRecovered,
	}, nil
}

// Workload re-exports the standard session generator for callers outside
// the package (cmd, benches).
func Workload(n int, seed uint64) ([]sensitive.Utterance, error) {
	return sessionWorkload(n, seed)
}

// EnergyModelInUse returns the power model priced by E7.
func EnergyModelInUse() power.Model { return power.DefaultModel() }
