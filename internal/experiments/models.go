package experiments

import (
	"fmt"

	"repro/internal/asr"
	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ml/classify"
	"repro/internal/ml/train"
	"repro/internal/sensitive"
)

// TEEModelBudgetBytes is the secure-memory budget we require classifier
// models to fit (paper §V: "TrustZone provide[s] relatively small memory
// resources"; OP-TEE TAs commonly get ~1 MiB heaps).
const TEEModelBudgetBytes = 1 << 20

// E3Row is one classifier's evaluation (Table-2).
type E3Row struct {
	Arch            classify.Arch
	Accuracy        float64
	Precision       float64
	Recall          float64
	F1              float64
	Params          int
	MemoryBytes     int
	FitsTEE         bool
	InferenceCycles float64 // virtual cycles per utterance at 4 MACs/cycle
}

// E3Classifiers trains the paper's three §IV.4 architectures on the
// synthetic corpus and evaluates on a held-out set: the experiment the
// paper defers with "the choice between these architectures will depend
// on ... the final evaluation results obtained".
func E3Classifiers(seed uint64) (*metrics.Table, []E3Row, error) {
	vocab := sensitive.NewVocabulary()
	testCorpus, err := sensitive.Generate(sensitive.GenConfig{
		N: 160, SensitiveFraction: 0.45, Seed: seed + 1000, // disjoint from training seed
	})
	if err != nil {
		return nil, nil, err
	}

	var rows []E3Row
	tbl := metrics.NewTable("E3 (Table-2): sensitive-content classifiers",
		"arch", "acc", "prec", "recall", "f1", "params", "mem KiB", "fits TEE", "infer us")
	for _, arch := range []classify.Arch{classify.ArchCNN, classify.ArchTransformer, classify.ArchHybrid} {
		clf, err := core.TrainClassifier(arch, vocab, seed, 8)
		if err != nil {
			return nil, nil, fmt.Errorf("e3 train %v: %w", arch, err)
		}
		samples := make([]train.Sample, 0, len(testCorpus))
		for _, u := range testCorpus {
			samples = append(samples, train.Sample{
				X: clf.TokensToFeatures(vocab.Encode(u.Words)),
				Y: u.Label(),
			})
		}
		m, err := train.Evaluate(clf.Model(), samples, clf.InputShape())
		if err != nil {
			return nil, nil, fmt.Errorf("e3 eval %v: %w", arch, err)
		}
		row := E3Row{
			Arch:            arch,
			Accuracy:        m.Accuracy(),
			Precision:       m.Precision(),
			Recall:          m.Recall(),
			F1:              m.F1(),
			Params:          clf.ParamCount(),
			MemoryBytes:     clf.MemoryBytes(),
			FitsTEE:         clf.FitsIn(TEEModelBudgetBytes),
			InferenceCycles: float64(clf.EstimateMACs()) / 4,
		}
		rows = append(rows, row)
		tbl.AddRow(arch.String(), row.Accuracy, row.Precision, row.Recall, row.F1,
			row.Params, float64(row.MemoryBytes)/1024, row.FitsTEE, cyclesToUs(row.InferenceCycles))
	}
	return tbl, rows, nil
}

// E3bPoint is one (noise, architecture) end-to-end measurement.
type E3bPoint struct {
	Noise       float64
	Arch        classify.Arch
	ASRAccuracy float64 // word accuracy of the transcripts
	Recall      float64 // sensitive utterances caught from noisy transcripts
	Accuracy    float64
}

// E3bNoiseRobustness extends E3 with the deciding experiment: instead of
// classifying ground-truth token sequences, each architecture classifies
// transcripts produced by the device ASR under increasing acoustic noise.
// This is the condition the in-TEE filter actually operates in, and it is
// where recall — the security-critical metric — erodes.
func E3bNoiseRobustness(seed uint64) (*metrics.Figure, []E3bPoint, error) {
	vocab := sensitive.NewVocabulary()
	noises := []float64{0.005, 0.05, 0.1, 0.2, 0.3}
	archs := []classify.Arch{classify.ArchCNN, classify.ArchTransformer, classify.ArchHybrid}

	// The device recognizer, pre-trained at nominal conditions.
	voice := audio.DefaultVoice(1000)
	voice.NoiseAmp = 0.01
	rec, err := asr.New(asr.DefaultConfig(voice.Rate))
	if err != nil {
		return nil, nil, err
	}
	if err := rec.Train(vocab.Words(), voice); err != nil {
		return nil, nil, err
	}
	classifiers := make(map[classify.Arch]*classify.Classifier, len(archs))
	for _, a := range archs {
		clf, err := core.TrainClassifier(a, vocab, seed, 8)
		if err != nil {
			return nil, nil, err
		}
		classifiers[a] = clf
	}
	testSet, err := sensitive.Generate(sensitive.GenConfig{
		N: 40, SensitiveFraction: 0.5, Seed: seed + 2000,
	})
	if err != nil {
		return nil, nil, err
	}

	series := make(map[classify.Arch]*metrics.Series, len(archs))
	for _, a := range archs {
		series[a] = &metrics.Series{
			Name: a.String() + " recall", XLabel: "noise amplitude", YLabel: "recall",
		}
	}
	asrSeries := &metrics.Series{Name: "ASR word accuracy", XLabel: "noise amplitude", YLabel: "accuracy"}
	var points []E3bPoint
	for _, noise := range noises {
		// Transcribe the whole test set once per noise level.
		transcripts := make([][]string, len(testSet))
		var wordAcc float64
		for i, u := range testSet {
			v := voice
			v.Seed = seed*7919 + uint64(i)*13 + 5
			v.NoiseAmp = noise
			pcm := v.Synthesize(u.Words)
			hyp, err := rec.TranscribeWords(pcm)
			if err != nil {
				return nil, nil, fmt.Errorf("e3b transcribe: %w", err)
			}
			transcripts[i] = hyp
			wordAcc += asr.WordAccuracy(u.Words, hyp)
		}
		wordAcc /= float64(len(testSet))
		asrSeries.Add(noise, wordAcc)

		for _, a := range archs {
			clf := classifiers[a]
			var m train.Metrics
			for i, u := range testSet {
				cls, err := clf.Predict(clf.TokensToFeatures(vocab.Encode(transcripts[i])))
				if err != nil {
					return nil, nil, fmt.Errorf("e3b classify: %w", err)
				}
				m.Observe(u.Label(), cls)
			}
			series[a].Add(noise, m.Recall())
			points = append(points, E3bPoint{
				Noise: noise, Arch: a,
				ASRAccuracy: wordAcc,
				Recall:      m.Recall(),
				Accuracy:    m.Accuracy(),
			})
		}
	}
	fig := &metrics.Figure{
		Title: "E3b: filter recall on noisy-ASR transcripts",
		Series: []*metrics.Series{
			asrSeries, series[classify.ArchCNN], series[classify.ArchTransformer], series[classify.ArchHybrid],
		},
	}
	return fig, points, nil
}
