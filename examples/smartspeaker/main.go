// Smartspeaker compares the three deployments of a voice assistant on the
// same conversation — the paper's §I scenario (Google Assistant/Alexa
// recordings leaking to the provider) versus its proposed design.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	conversation, err := repro.GenerateUtterances(12, 0.5, 2024)
	if err != nil {
		log.Fatal(err)
	}

	deployments := []struct {
		name string
		cfg  repro.Config
	}{
		{"1. today's smart speaker (raw audio to cloud)", repro.Config{Mode: repro.Baseline, Seed: 2024}},
		{"2. TEE driver, no filter (transcripts to cloud)", repro.Config{Mode: repro.SecureNoFilter, Seed: 2024}},
		{"3. PeriGuard (TEE driver + in-TEE ML filter)", repro.Config{Mode: repro.SecureFilter, Policy: repro.Block, Seed: 2024}},
	}

	fmt.Printf("conversation: %d utterances, %d carrying private content\n\n",
		len(conversation), countSensitive(conversation))
	for _, d := range deployments {
		sys, err := repro.New(d.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(conversation)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(d.name)
		fmt.Printf("   provider saw:    %3d sensitive tokens, %6d audio bytes\n",
			res.CloudSensitiveTokens, res.CloudAudioBytes)
		fmt.Printf("   hacked OS saw:   %3d buffer bytes (%d/%d snoops blocked)\n",
			res.SnoopBytesRecovered, res.SnoopBlocked, res.SnoopAttempts)
		fmt.Printf("   cost:            %.1f virtual ms/utterance, %.1f mJ, %d world switches\n\n",
			res.MeanLatencyCycles/1e6, res.EnergyTotalMJ, res.WorldSwitches)
	}
}

func countSensitive(utts []repro.Utterance) int {
	n := 0
	for _, u := range utts {
		if u.Sensitive {
			n++
		}
	}
	return n
}
