// Quickstart: build the paper's full design (in-TEE driver + in-TEE ML
// filter), speak a handful of utterances at it, and see what the cloud
// provider and a compromised OS were able to observe.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// A workload of smart-home utterances; ~40% carry private content.
	utterances, err := repro.GenerateUtterances(6, 0.4, 7)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's complete design: driver in the TEE, CNN filter in the
	// TA, flagged utterances blocked before they leave the secure world.
	system, err := repro.New(repro.Config{
		Mode:   repro.SecureFilter,
		Arch:   repro.CNN,
		Policy: repro.Block,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	result, err := system.Run(utterances)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("spoken utterances:")
	for _, u := range result.Utterances {
		tag := "  "
		if u.Sensitive {
			tag = "🔒"
		}
		verdict := "reached the cloud"
		if !u.Forwarded {
			verdict = "blocked in the TEE"
		}
		fmt.Printf("  %s %-50q -> %s\n", tag, strings.Join(u.Words, " "), verdict)
	}
	fmt.Println()
	fmt.Println(result)
}
