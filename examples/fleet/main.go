// Fleet walks through the orchestration layer: a mixed population of
// smart speakers and camera doorbells (all three deployment modes),
// multiplexed into a sharded provider ingest behind a consistent-hash
// router, with secure speakers batching TA inference. It prints the
// fleet-level version of the paper's privacy claim: the provider's
// aggregated audit shows the secure-filter slice leaking almost nothing
// while baseline devices leak everything they hear.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fleet"
)

func main() {
	cfg := fleet.Config{
		Devices:          48, // 3:1 speakers to doorbells
		Shards:           4,  // provider ingest partitions
		Batch:            4,  // utterances per TA world-switch round trip
		Utterances:       4,  // per speaker
		Frames:           4,  // per doorbell
		DoorbellFraction: 0.25,
		Seed:             2024,
	}

	fmt.Printf("fleet: %d devices across %d ingest shards (seed %d)\n\n",
		cfg.Devices, cfg.Shards, cfg.Seed)
	res, err := fleet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d items in %v (%.0f items/s), %d cloud events, %d lost\n\n",
		res.TotalItems, res.RunWall.Round(1e6), res.Throughput(),
		res.IngestedFrames(), res.LostFrames())

	fmt.Println("what the provider learned, by population slice:")
	for _, k := range res.GroupKeys() {
		g := res.Groups[k]
		switch k.Kind {
		case core.DeviceSpeaker:
			fmt.Printf("   %-24s %2d devices: %3d sensitive tokens observed (p99 %.2f virtual ms/utterance)\n",
				k, g.Devices, g.SensitiveTokens, g.Latency.Percentile(99)/1e6)
		case core.DeviceDoorbell:
			fmt.Printf("   %-24s %2d devices: %3d person frames exposed\n",
				k, g.Devices, g.PersonFrames)
		}
	}

	fmt.Println("\ningest tier:")
	for _, s := range res.ShardStats {
		fmt.Printf("   %s: %3d devices, %3d frames, %d errors\n",
			s.Name, s.Devices, s.Frames, s.Errors)
	}

	fmt.Printf("\naggregate audit: %d events, %d tokens (%d sensitive), %d audio bytes\n",
		res.Audit.Events, res.Audit.TokensSeen, res.Audit.SensitiveTokens, res.Audit.AudioBytes)
	fmt.Println("(the sealed relay means every one of those events was decrypted by the")
	fmt.Println(" provider as the legitimate peer — filtering happened on-device, in the TEE)")
}
