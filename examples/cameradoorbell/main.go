// Cameradoorbell exercises the paper's camera path (§IV.4: "for an image
// analysis based system, a pre-trained ML classifier alone will be
// sufficient") through the full TEE pipeline: a doorbell camera whose
// frames are classified inside a trusted application, uploading only
// frames without people in them — and compares it against today's
// upload-everything doorbell.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A day at the door: mostly empty porch, occasionally a person.
	day := []bool{false, false, true, false, true, true, false, false, true, false}
	people := 0
	for _, p := range day {
		if p {
			people++
		}
	}
	fmt.Printf("workload: %d frames, %d with a person at the door\n\n", len(day), people)

	for _, mode := range []repro.Mode{repro.Baseline, repro.SecureFilter} {
		pipeline, err := repro.NewCameraPipeline(mode, 99)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipeline.Run(day)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  frames uploaded to cloud:   %d of %d\n", res.ForwardedFrames, res.Frames)
		fmt.Printf("  person frames leaked:       %d of %d\n", res.LeakedPersons, res.PersonFrames)
		fmt.Printf("  empty frames wrongly held:  %d\n", res.BlockedEmpties)
		fmt.Printf("  OS frame-buffer snooping:   %d/%d blocked (%d bytes stolen)\n",
			res.SnoopBlocked, res.SnoopAttempts, res.SnoopBytes)
		fmt.Printf("  cost: %.0f cycles/frame, %.2f mJ\n\n", res.MeanLatencyCycle, res.EnergyTotalMJ)
	}
}
