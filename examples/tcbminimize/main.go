// Tcbminimize demonstrates the paper's §IV.2 trusted-computing-base
// reduction: trace a single "record a sound" task through the instrumented
// multi-protocol sound driver, and build the minimal OP-TEE driver image
// containing only what the task needs.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	report, err := repro.MinimizeTCB()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tracing task: record a sound (I2S capture)")
	fmt.Printf("the capture task executed %d driver functions:\n", len(report.TracedFunctions))
	for i, fn := range report.TracedFunctions {
		sep := ", "
		if i == len(report.TracedFunctions)-1 {
			sep = "\n\n"
		}
		fmt.Print(fn, sep)
	}

	fmt.Printf("full driver:         %d functions / %d LoC / %d bytes\n",
		report.FullFunctions, report.FullLoC, report.FullBytes)
	fmt.Printf("minimal TEE image:   %d functions / %d LoC / %d bytes\n",
		report.MinimalFunctions, report.MinimalLoC, report.MinimalBytes)
	fmt.Printf("TCB cut:             %.1f%% of driver code excluded from OP-TEE\n\n", report.LoCReductionPct)

	fmt.Println("sample of the conditional-compilation flags doing the cutting:")
	for _, d := range report.ExcludeDirectives {
		if strings.Contains(d, "USB") || strings.Contains(d, "HDMI") {
			fmt.Printf("  %s\n", d)
		}
	}
}
