package repro

import (
	"fmt"
	"time"

	"repro/internal/audio"
	"repro/internal/bus"
	"repro/internal/driver"
	"repro/internal/ftrace"
	"repro/internal/i2s"
	"repro/internal/memory"
	"repro/internal/peripheral"
	"repro/internal/tz"
)

// tcbRig is a minimal single-driver platform used by MinimizeTCB to run
// one traced capture task.
type tcbRig struct {
	drv    *driver.SoundDriver
	mic    *peripheral.Microphone
	tracer *ftrace.Tracer
}

func newTCBRig() (*tcbRig, error) {
	const ctrlBase = 0x7000_9000
	plat, err := memory.NewPlatform(memory.DefaultLayout())
	if err != nil {
		return nil, fmt.Errorf("tcb rig: %w", err)
	}
	clock := tz.NewClock()
	cost := tz.DefaultCostModel()
	b := bus.New(clock, cost)
	ctrl := i2s.NewController("i2s0", 1<<16)
	if err := b.Map(ctrlBase, i2s.RegSize, false, ctrl); err != nil {
		return nil, fmt.Errorf("tcb rig: %w", err)
	}
	tracer := ftrace.New(clock)
	drv, err := driver.New(driver.Config{
		Name:     "i2s0-trace",
		World:    tz.WorldNormal,
		Bus:      b,
		Ctrl:     ctrl,
		CtrlBase: ctrlBase,
		DMA:      bus.NewDMA(clock, cost, plat.Mem),
		Mem:      plat.Mem,
		Heap:     plat.DMAHeap,
		Clock:    clock,
		Cost:     cost,
		Tracer:   tracer,
		BufBytes: 4096,
	})
	if err != nil {
		return nil, fmt.Errorf("tcb rig: %w", err)
	}
	mic, err := peripheral.NewMicrophone(ctrl, i2s.DefaultFormat())
	if err != nil {
		return nil, fmt.Errorf("tcb rig: %w", err)
	}
	return &tcbRig{drv: drv, mic: mic, tracer: tracer}, nil
}

// traceCaptureTask records one sound (the paper's canonical traced task)
// and returns the minimal function set.
func (r *tcbRig) traceCaptureTask() (map[string]bool, error) {
	tone := audio.Sine(16000, 440, 0.4, 100*time.Millisecond)
	r.mic.Load(tone)
	r.tracer.Start("record-a-sound")
	want := len(tone.Samples) * 2
	_, err := r.drv.CaptureTask(i2s.DefaultFormat(), want, func(need int) {
		n := need
		if n > 2048 {
			n = 2048
		}
		_, _ = r.mic.PumpBytes(n)
	})
	trace := r.tracer.Stop()
	if err != nil {
		return nil, fmt.Errorf("tcb trace: %w", err)
	}
	return ftrace.MinimalSet(trace), nil
}
