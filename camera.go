package repro

// Public camera-pipeline API: the paper's §IV.6 generalization of the
// design to a second peripheral class. Unlike CameraFilter (the bare
// model), CameraPipeline runs frames through the full TEE path:
// camera → camera PTA → camera TA (in-TEE classifier) → sealed relay →
// cloud, with the compromised-OS adversary sweeping the frame buffer.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/peripheral"
)

// CameraPipeline is a camera-equipped device plus its cloud endpoint.
type CameraPipeline struct {
	inner *core.CameraSystem
}

// NewCameraPipeline builds the pipeline. Supported modes: Baseline
// (frames uploaded from normal-world memory) and SecureFilter (the full
// in-TEE path; person frames never leave the device).
func NewCameraPipeline(mode Mode, seed uint64) (*CameraPipeline, error) {
	if seed == 0 {
		seed = 1
	}
	inner, err := core.NewCameraSystem(core.CameraConfig{
		Mode: coreMode(mode),
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &CameraPipeline{inner: inner}, nil
}

// CameraResult aggregates one camera session.
type CameraResult struct {
	Mode             Mode
	Frames           int
	PersonFrames     int // ground truth
	ForwardedFrames  int
	LeakedPersons    int // person frames that reached the cloud
	BlockedEmpties   int // empty frames wrongly withheld
	SnoopAttempts    int
	SnoopBlocked     int
	SnoopBytes       int
	MeanLatencyCycle float64
	EnergyTotalMJ    float64
}

// String renders a compact summary.
func (r *CameraResult) String() string {
	return fmt.Sprintf("%s: %d/%d frames forwarded, %d person frames leaked, snoop %d/%d blocked",
		r.Mode, r.ForwardedFrames, r.Frames, r.LeakedPersons, r.SnoopBlocked, r.SnoopAttempts)
}

// Run captures one frame per entry of personAtDoor (true = a person is in
// the scene) and reports what reached the cloud.
func (c *CameraPipeline) Run(personAtDoor []bool) (*CameraResult, error) {
	scenes := make([]peripheral.Scene, len(personAtDoor))
	for i, p := range personAtDoor {
		if p {
			scenes[i] = peripheral.ScenePerson
		} else {
			scenes[i] = peripheral.SceneEmpty
		}
	}
	res, err := c.inner.RunSession(scenes)
	if err != nil {
		return nil, err
	}
	return &CameraResult{
		Mode:             Mode(res.Mode),
		Frames:           res.Frames,
		PersonFrames:     res.PersonFrames,
		ForwardedFrames:  res.ForwardedFrames,
		LeakedPersons:    res.ForwardedPersons,
		BlockedEmpties:   res.BlockedEmpties,
		SnoopAttempts:    res.Snoop.Attempts,
		SnoopBlocked:     res.Snoop.Blocked,
		SnoopBytes:       res.Snoop.BytesRecovered,
		MeanLatencyCycle: res.Latency.Mean(),
		EnergyTotalMJ:    res.Energy.TotalmJ(),
	}, nil
}
