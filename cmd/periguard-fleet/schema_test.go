package main

// Snapshot-schema drift guard. docs/OPERATIONS.md documents the -json
// snapshot field-for-field inside a ```snapshot-schema fenced block;
// this test derives the schema from the snapshot struct by reflection
// and requires the two lists to match byte-for-byte, then runs a real
// (small, fully-featured) fleet through run() and round-trips its output
// with DisallowUnknownFields. Documentation drift and struct drift both
// fail CI.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// schemaPaths walks a snapshot type and emits one path per leaf field,
// using "." for struct/map nesting ("*" for map keys) and "[]" for
// slices.
func schemaPaths(t reflect.Type, prefix string, out *[]string) {
	switch t.Kind() {
	case reflect.Pointer:
		schemaPaths(t.Elem(), prefix, out)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "" || tag == "-" {
				continue
			}
			path := tag
			if prefix != "" {
				path = prefix + "." + tag
			}
			schemaPaths(f.Type, path, out)
		}
	case reflect.Map:
		schemaPaths(t.Elem(), prefix+".*", out)
	case reflect.Slice:
		schemaPaths(t.Elem(), prefix+"[]", out)
	default:
		*out = append(*out, prefix)
	}
}

// documentedSchema extracts the ```snapshot-schema block from the
// operator's handbook.
func documentedSchema(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("operator handbook missing: %v", err)
	}
	lines := strings.Split(string(raw), "\n")
	var fields []string
	in := false
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "```snapshot-schema"):
			in = true
		case in && strings.HasPrefix(line, "```"):
			return fields
		case in:
			if f := strings.TrimSpace(line); f != "" {
				fields = append(fields, f)
			}
		}
	}
	t.Fatal("docs/OPERATIONS.md has no ```snapshot-schema block")
	return nil
}

// TestSnapshotSchemaMatchesHandbook: the documented field list equals
// the struct-derived one, byte for byte.
func TestSnapshotSchemaMatchesHandbook(t *testing.T) {
	var derived []string
	schemaPaths(reflect.TypeOf(snapshot{}), "", &derived)
	documented := documentedSchema(t)
	sort.Strings(derived)
	sorted := append([]string(nil), documented...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(sorted, documented) {
		t.Fatalf("snapshot-schema block must be sorted:\n%s", strings.Join(documented, "\n"))
	}
	if !reflect.DeepEqual(derived, sorted) {
		t.Fatalf("docs/OPERATIONS.md snapshot schema drifted from the snapshot struct.\nderived:\n%s\n\ndocumented:\n%s",
			strings.Join(derived, "\n"), strings.Join(sorted, "\n"))
	}
}

// TestSnapshotSmoke runs a small fully-featured fleet through the CLI
// entry point and round-trips the written snapshot against the struct
// with unknown fields disallowed — the output and the documented schema
// cannot drift apart silently.
func TestSnapshotSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	err := run([]string{
		"-devices", "12", "-shards", "2", "-utterances", "2", "-frames", "2",
		"-rollout", "-rogues", "2", "-churn", "0.3", "-rebalance", "-sched",
		"-rotate", "0.25", "-revoke", "0.15", "-federate", "-tenants", "2",
		"-policy", "shed", "-trace", "-trace-sample", "1",
		"-faults", "-fault-touch", "0.5", "-fault-drop", "0.2", "-fault-dup", "0.15",
		"-fault-expire", "0.1", "-fault-crashes", "1", "-fault-slow-shard", "2",
		"-fault-tee", "0.5", "-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("snapshot does not match its schema: %v", err)
	}
	if snap.AdmissionPolicy != "shed" {
		t.Fatalf("admission_policy %q", snap.AdmissionPolicy)
	}
	if snap.Churn == nil || snap.Churn.Joined == 0 || snap.Churn.Left == 0 {
		t.Fatalf("churn block missing or empty: %+v", snap.Churn)
	}
	if snap.Rebalance == nil || !snap.Rebalance.Fired ||
		snap.Rebalance.DrainedShard == "" || len(snap.Rebalance.AddedShards) == 0 {
		t.Fatalf("rebalance block missing or empty: %+v", snap.Rebalance)
	}
	drained := false
	for _, s := range snap.ShardStats {
		drained = drained || s.Drained
	}
	if !drained {
		t.Fatal("no drained shard in shard_stats")
	}
	if snap.LostFrames != 0 {
		t.Fatalf("lost %d frames", snap.LostFrames)
	}
	if snap.Faults == nil || snap.Faults.Injected == 0 {
		t.Fatalf("faults block missing or inert: %+v", snap.Faults)
	}
	if snap.Rollout == nil || snap.Rollout.Rollbacks == nil {
		t.Fatalf("rollout block incomplete: %+v", snap.Rollout)
	}
	if snap.Lifecycle == nil || snap.Lifecycle.Rotated == 0 || snap.Lifecycle.Revoked == 0 {
		t.Fatalf("lifecycle block missing or empty: %+v", snap.Lifecycle)
	}
	if snap.Lifecycle.ProbeRejected != snap.Lifecycle.ProbeAttempts {
		t.Fatalf("revocation probes: %d/%d rejected",
			snap.Lifecycle.ProbeRejected, snap.Lifecycle.ProbeAttempts)
	}
	if len(snap.TenantAttested) != 2 {
		t.Fatalf("tenant_attested: %v", snap.TenantAttested)
	}
	tel := snap.Telemetry
	if tel == nil || tel.SampleEvery != 1 {
		t.Fatalf("telemetry block missing or wrong rate: %+v", tel)
	}
	if tel.Spans == 0 || len(tel.Stages) == 0 {
		t.Fatalf("traced run exported no spans: %+v", tel)
	}
	if tel.SampledDevices+tel.UnsampledDevices == 0 || tel.UnsampledDevices != 0 {
		t.Fatalf("1-in-1 sampling skipped devices: %+v", tel)
	}
	var rejected uint64
	for name, n := range tel.Verdicts {
		if strings.HasPrefix(name, "rejected-") {
			rejected += n
		}
	}
	var shardRejected, byReason uint64
	for _, s := range snap.ShardStats {
		shardRejected += s.Rejected
		byReason += s.RejectedRevoked + s.RejectedStale + s.RejectedForged + s.RejectedPolicy
	}
	if byReason != shardRejected {
		t.Fatalf("per-reason rejects %d != total rejects %d", byReason, shardRejected)
	}
	if rejected != shardRejected {
		t.Fatalf("rejected spans %d != shard rejects %d", rejected, shardRejected)
	}
	if snap.ItemsPerSecTraced == 0 {
		t.Fatal("items_per_sec_traced missing on a traced run")
	}
	if snap.EffectiveBatch == 0 || snap.EffectiveBatch != snap.Batch {
		t.Fatalf("unclamped run surfaced batch %d effective %d", snap.Batch, snap.EffectiveBatch)
	}
	sc := snap.Sched
	if sc == nil || sc.Items == 0 || sc.Batches == 0 {
		t.Fatalf("sched block missing or inert: %+v", sc)
	}
	if sc.MixedVersionFlushes != 0 {
		t.Fatalf("%d flushes mixed model versions", sc.MixedVersionFlushes)
	}
	var flushed, telFlushed uint64
	for _, n := range sc.Flushes {
		flushed += n
	}
	if flushed != sc.Batches {
		t.Fatalf("flush reasons account for %d of %d batches", flushed, sc.Batches)
	}
	for _, n := range tel.Flushes {
		telFlushed += n
	}
	if telFlushed != flushed {
		t.Fatalf("telemetry flushes %d != scheduler flushes %d", telFlushed, flushed)
	}
}

// TestSnapshotSmokeMix drives a named -mix run that weights every
// registered mode — including hybrid-he — through the CLI, and checks
// the snapshot's mode-name-keyed mix block records the effective spec.
func TestSnapshotSmokeMix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	err := run([]string{
		"-devices", "12", "-shards", "2", "-utterances", "2", "-frames", "2",
		"-mix", "baseline=1,secure-nofilter=1,secure-filter=2,hybrid-he=1",
		"-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("snapshot does not match its schema: %v", err)
	}
	want := map[string]int{"baseline": 1, "secure-nofilter": 1, "secure-filter": 2, "hybrid-he": 1}
	if !reflect.DeepEqual(snap.Mix, want) {
		t.Fatalf("mix block %v, want %v", snap.Mix, want)
	}
	if snap.LostFrames != 0 {
		t.Fatalf("lost %d frames", snap.LostFrames)
	}
	if snap.CloudEvents == 0 {
		t.Fatal("hybrid-weighted fleet ingested nothing")
	}
}

// TestMixFlagUnknownMode: a bad -mix surfaces the registered-mode
// listing instead of a bare parse failure.
func TestMixFlagUnknownMode(t *testing.T) {
	err := run([]string{"-devices", "4", "-mix", "baseline=1,he-only=2"})
	if err == nil {
		t.Fatal("unknown mix mode was accepted")
	}
	if !strings.Contains(err.Error(), "hybrid-he") || !strings.Contains(err.Error(), "secure-filter") {
		t.Fatalf("error does not list registered modes: %v", err)
	}
}

// TestSnapshotSmokeAsync drives the event-driven pipeline through the CLI
// (-async composes with -sched, churn and key rotation, but not -rollout,
// so it gets its own smoke) and round-trips the snapshot's async block.
// TestAsyncWorkersFlagRejected: -workers sizes the goroutine-per-device
// pool, which -async replaces with the executor table, so the combination
// is refused up front instead of silently ignoring one flag.
func TestAsyncWorkersFlagRejected(t *testing.T) {
	err := run([]string{"-devices", "4", "-async", "-workers", "8"})
	if err == nil {
		t.Fatal("-async with -workers was accepted (the flag has no effect there)")
	}
	if !strings.Contains(err.Error(), "-async-executors") {
		t.Fatalf("rejection does not point at -async-executors: %v", err)
	}
}

func TestSnapshotSmokeAsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	err := run([]string{
		"-devices", "12", "-shards", "2", "-utterances", "2", "-frames", "2",
		"-sched", "-async", "-churn", "0.3", "-rotate", "0.25", "-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("snapshot does not match its schema: %v", err)
	}
	if snap.LostFrames != 0 {
		t.Fatalf("lost %d frames", snap.LostFrames)
	}
	a := snap.Async
	if a == nil || a.Executors == 0 || a.Steps == 0 || a.PeakLive == 0 {
		t.Fatalf("async block missing or inert: %+v", a)
	}
	if a.Parks == 0 {
		t.Fatal("async+sched run parked no classify groups")
	}
	sc := snap.Sched
	if sc == nil || sc.Items == 0 {
		t.Fatalf("sched block missing or inert: %+v", sc)
	}
	if sc.MeanOccupancySteady < sc.MeanOccupancy {
		t.Fatalf("steady occupancy %v below raw %v", sc.MeanOccupancySteady, sc.MeanOccupancy)
	}
	if snap.Lifecycle == nil || snap.Lifecycle.Rotated == 0 {
		t.Fatalf("lifecycle block missing or empty under -async: %+v", snap.Lifecycle)
	}
	if snap.Churn == nil || snap.Churn.Joined == 0 {
		t.Fatalf("churn block missing or empty under -async: %+v", snap.Churn)
	}
}
