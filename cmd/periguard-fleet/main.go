// Command periguard-fleet runs a mixed-mode device population against a
// sharded provider ingest tier and prints per-mode throughput, the
// batched-inference latency distribution, per-shard counters and the
// aggregate privacy audit. With -json it also writes a machine-readable
// snapshot (the BENCH_fleet.json perf trajectory).
//
// Example:
//
//	periguard-fleet -devices 1000 -shards 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "periguard-fleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("periguard-fleet", flag.ContinueOnError)
	devices := fs.Int("devices", 1000, "population size")
	shards := fs.Int("shards", 8, "ingest shards")
	shardWorkers := fs.Int("shard-workers", 4, "workers per shard")
	deviceWorkers := fs.Int("workers", 0, "concurrent device pipelines (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 4, "TA utterance batch size for secure speakers")
	utterances := fs.Int("utterances", 4, "utterances per speaker")
	frames := fs.Int("frames", 6, "frames per doorbell")
	doorbells := fs.Float64("doorbells", 0.25, "doorbell fraction of the population (0 = none)")
	seed := fs.Uint64("seed", 1, "root seed (devices, workloads and model derive from it)")
	jsonPath := fs.String("json", "", "write a JSON snapshot to this path")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	doorbellFrac := *doorbells
	if doorbellFrac == 0 {
		doorbellFrac = -1 // flag 0 means "none", not "library default"
	}
	cfg := fleet.Config{
		Devices:          *devices,
		Shards:           *shards,
		ShardWorkers:     *shardWorkers,
		DeviceWorkers:    *deviceWorkers,
		Batch:            *batch,
		Utterances:       *utterances,
		Frames:           *frames,
		DoorbellFraction: doorbellFrac,
		Seed:             *seed,
	}
	fmt.Printf("PeriGuard fleet: %d devices, %d shards, batch %d, seed %d\n",
		*devices, *shards, *batch, *seed)
	start := time.Now()
	res, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("completed in %v (build %v, run %v)\n\n",
		time.Since(start).Round(time.Millisecond),
		res.BuildWall.Round(time.Millisecond),
		res.RunWall.Round(time.Millisecond))

	// Latencies below are virtual milliseconds: cycles / 1e6 at 1 GHz.
	groups := metrics.NewTable("Per-mode results",
		"group", "devices", "items", "items/s(wall)", "p50(vms)", "p99(vms)",
		"cloud events", "sens tokens", "person frames")
	for _, k := range res.GroupKeys() {
		g := res.Groups[k]
		groups.AddRow(k.String(), g.Devices, g.Items,
			metrics.Throughput(g.Items, res.RunWall.Seconds()),
			g.Latency.Percentile(50)/1e6,
			g.Latency.Percentile(99)/1e6,
			g.CloudEvents, g.SensitiveTokens, g.PersonFrames)
	}
	fmt.Println(groups)

	shardsTbl := metrics.NewTable("Ingest shards",
		"shard", "devices", "frames", "errors", "queue peak")
	for _, s := range res.ShardStats {
		shardsTbl.AddRow(s.Name, s.Devices, s.Frames, s.Errors, s.QueuePeak)
	}
	fmt.Println(shardsTbl)

	fmt.Printf("aggregate: %d items at %.0f items/s; ingested %d cloud events (%d lost); "+
		"provider observed %d tokens, %d sensitive, %d audio bytes\n",
		res.TotalItems, res.Throughput(), res.IngestedFrames(), res.LostFrames(),
		res.Audit.TokensSeen, res.Audit.SensitiveTokens, res.Audit.AudioBytes)
	fmt.Printf("batched inference latency: p50 %.2f vms, p99 %.2f vms (virtual ms at 1 GHz)\n",
		res.Latency.Percentile(50)/1e6, res.Latency.Percentile(99)/1e6)

	if *jsonPath != "" {
		if err := writeSnapshot(*jsonPath, res); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", *jsonPath)
	}
	return nil
}

// snapshot is the stable JSON shape later PRs benchmark against.
type snapshot struct {
	Devices       int                `json:"devices"`
	Shards        int                `json:"shards"`
	Batch         int                `json:"batch"`
	Seed          uint64             `json:"seed"`
	BuildWallMs   float64            `json:"build_wall_ms"`
	RunWallMs     float64            `json:"run_wall_ms"`
	ItemsPerSec   float64            `json:"items_per_sec"`
	TotalItems    int                `json:"total_items"`
	CloudEvents   uint64             `json:"cloud_events"`
	LostFrames    int                `json:"lost_frames"`
	SensTokens    int                `json:"sensitive_tokens"`
	LatencyP50Vms float64            `json:"latency_p50_vms"`
	LatencyP99Vms float64            `json:"latency_p99_vms"`
	Groups        map[string]groupJS `json:"groups"`
}

type groupJS struct {
	Devices     int     `json:"devices"`
	Items       int     `json:"items"`
	ItemsPerSec float64 `json:"items_per_sec"`
	P50Vms      float64 `json:"p50_vms"`
	P99Vms      float64 `json:"p99_vms"`
	CloudEvents int     `json:"cloud_events"`
	SensTokens  int     `json:"sensitive_tokens"`
}

func writeSnapshot(path string, res *fleet.Result) error {
	snap := snapshot{
		Devices:       res.Config.Devices,
		Shards:        res.Config.Shards,
		Batch:         res.Config.Batch,
		Seed:          res.Config.Seed,
		BuildWallMs:   float64(res.BuildWall.Microseconds()) / 1e3,
		RunWallMs:     float64(res.RunWall.Microseconds()) / 1e3,
		ItemsPerSec:   res.Throughput(),
		TotalItems:    res.TotalItems,
		CloudEvents:   res.IngestedFrames(),
		LostFrames:    res.LostFrames(),
		SensTokens:    res.Audit.SensitiveTokens,
		LatencyP50Vms: res.Latency.Percentile(50) / 1e6,
		LatencyP99Vms: res.Latency.Percentile(99) / 1e6,
		Groups:        map[string]groupJS{},
	}
	for _, k := range res.GroupKeys() {
		g := res.Groups[k]
		snap.Groups[k.String()] = groupJS{
			Devices:     g.Devices,
			Items:       g.Items,
			ItemsPerSec: metrics.Throughput(g.Items, res.RunWall.Seconds()),
			P50Vms:      g.Latency.Percentile(50) / 1e6,
			P99Vms:      g.Latency.Percentile(99) / 1e6,
			CloudEvents: g.CloudEvents,
			SensTokens:  g.SensitiveTokens,
		}
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
