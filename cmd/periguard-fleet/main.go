// Command periguard-fleet runs a mixed-mode device population against a
// sharded provider ingest tier and prints per-mode throughput, the
// batched-inference latency distribution, per-shard counters and the
// aggregate privacy audit. With -json it also writes a machine-readable
// snapshot (the BENCH_fleet.json perf trajectory).
//
// Example:
//
//	periguard-fleet -devices 1000 -shards 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "periguard-fleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("periguard-fleet", flag.ContinueOnError)
	devices := fs.Int("devices", 1000, "population size")
	shards := fs.Int("shards", 8, "ingest shards")
	shardWorkers := fs.Int("shard-workers", 4, "workers per shard")
	deviceWorkers := fs.Int("workers", 0, "concurrent device pipelines (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 4, "TA utterance batch size for secure speakers")
	utterances := fs.Int("utterances", 4, "utterances per speaker")
	frames := fs.Int("frames", 6, "frames per doorbell")
	doorbells := fs.Float64("doorbells", 0.25, "doorbell fraction of the population (0 = none)")
	mixFlag := fs.String("mix", "", "speaker mode mix as mode=weight pairs, e.g. baseline=1,secure-filter=2,hybrid-he=1 (empty = 1:1:1 over baseline, secure-nofilter, secure-filter)")
	seed := fs.Uint64("seed", 1, "root seed (devices, workloads and model derive from it)")
	attestOn := fs.Bool("attest", false, "require attested handshakes before ingest")
	rollout := fs.Bool("rollout", false, "stage an online model rollout during the run (implies -attest)")
	canary := fs.Float64("canary", 0.1, "canary fraction of the secure population for -rollout")
	rogues := fs.Int("rogues", 0, "unattested adversarial clients to throw at the ingest tier")
	rotate := fs.Float64("rotate", 0, "fraction of the population whose attestation keys rotate mid-run (implies -attest)")
	revoke := fs.Float64("revoke", 0, "fraction of the population revoked after completing, with probe frames that must be rejected (implies -attest)")
	federate := fs.Bool("federate", false, "give every tenant its own attestation verifier, routed by the frame's tenant label (implies -attest)")
	churn := fs.Float64("churn", 0, "mid-run churn rate: fraction of the population that joins AND leaves (0 = static)")
	rebalance := fs.Bool("rebalance", false, "mid-run tier rebalance: drain shard-00 and add a weight-2 shard at 50% completion")
	policy := fs.String("policy", "fixed", "admission policy: fixed (blocking queue), shed (load-shedding), fair (per-tenant fair share)")
	tenants := fs.Int("tenants", 4, "tenant count device traffic is striped across (fair-share accounting)")
	faultsOn := fs.Bool("faults", false, "run a deterministic chaos plan: seeded uplink faults, shard crash/recovery, device-side retry")
	faultTouch := fs.Float64("fault-touch", 0.25, "with -faults, fraction of the population subject to uplink injection")
	faultDrop := fs.Float64("fault-drop", 0.1, "with -faults, per-delivery drop rate on touched devices (retried by the device)")
	faultDup := fs.Float64("fault-dup", 0.05, "with -faults, per-delivery duplicate rate (deduplicated at the shard)")
	faultDelay := fs.Float64("fault-delay", 0.05, "with -faults, per-delivery virtual-delay rate")
	faultExpire := fs.Float64("fault-expire", 0, "with -faults, per-delivery expiry-blackhole rate (frame exhausts its retry budget)")
	faultCrashes := fs.Int("fault-crashes", 0, "with -faults, shard crash/restart cycles fired at evenly spaced completion points")
	faultSlowShard := fs.Int("fault-slow-shard", 0, "with -faults, 1-based index of a founding shard to slow for the whole run (0 = none)")
	faultTEE := fs.Float64("fault-tee", 0, "with -faults, fraction of touched devices hitting a transient TEE error at provisioning")
	faultSeed := fs.Uint64("fault-seed", 0, "with -faults, chaos plan seed (0 = derived from -seed)")
	schedOn := fs.Bool("sched", false, "coalesce secure-speaker classification across devices through the shared TEE batch scheduler")
	schedAge := fs.Uint64("sched-age", 0, "with -sched, flush deadline in virtual cycles for a partially filled batch (0 = library default)")
	asyncOn := fs.Bool("async", false, "drive devices through the event-driven pipeline (bounded executor pool + task table instead of one goroutine per device)")
	asyncExecutors := fs.Int("async-executors", 0, "with -async, executor pool size (0 = GOMAXPROCS)")
	traceOn := fs.Bool("trace", false, "enable frame telemetry (virtual-time spans, flight recorders) and print the trace dump")
	traceSample := fs.Int("trace-sample", 64, "with -trace, trace 1 in N devices (1 = every device)")
	jsonPath := fs.String("json", "", "write a JSON snapshot to this path")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asyncOn && *deviceWorkers != 0 {
		return fmt.Errorf("-workers has no effect with -async (the executor pool drives devices); use -async-executors")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	doorbellFrac := *doorbells
	if doorbellFrac == 0 {
		doorbellFrac = -1 // flag 0 means "none", not "library default"
	}
	mix, err := fleet.ParseMix(*mixFlag)
	if err != nil {
		return err
	}
	cfg := fleet.Config{
		Mix:              mix,
		Devices:          *devices,
		Shards:           *shards,
		ShardWorkers:     *shardWorkers,
		DeviceWorkers:    *deviceWorkers,
		Batch:            *batch,
		Utterances:       *utterances,
		Frames:           *frames,
		DoorbellFraction: doorbellFrac,
		Seed:             *seed,
		Attest:           *attestOn,
		Rogues:           *rogues,
		Policy:           *policy,
		Tenants:          *tenants,
		Federate:         *federate,
	}
	if *rollout {
		cfg.Rollout = &fleet.RolloutSpec{CanaryFraction: *canary}
	}
	if *rotate > 0 || *revoke > 0 {
		cfg.Lifecycle = &fleet.LifecycleSpec{RotateFraction: *rotate, RevokeFraction: *revoke}
	}
	if *churn > 0 {
		cfg.Churn = &fleet.ChurnSpec{JoinFraction: *churn, LeaveFraction: *churn}
	}
	if *rebalance {
		cfg.Rebalance = &fleet.RebalanceSpec{AtFraction: 0.5, DrainShard: 0, AddShards: 1, AddWeight: 2}
	}
	if *schedOn {
		cfg.Sched = &fleet.SchedSpec{MaxAge: tz.Cycles(*schedAge)}
	}
	if *asyncOn {
		cfg.Async = &fleet.AsyncSpec{Executors: *asyncExecutors}
	}
	if *traceOn {
		cfg.Trace = &fleet.TraceSpec{SampleEvery: *traceSample}
	}
	if *faultsOn {
		cfg.Faults = &fleet.FaultSpec{
			TouchFraction: *faultTouch,
			DropRate:      *faultDrop,
			DuplicateRate: *faultDup,
			DelayRate:     *faultDelay,
			ExpireRate:    *faultExpire,
			Crashes:       *faultCrashes,
			SlowShard:     *faultSlowShard,
			TEEFraction:   *faultTEE,
			Seed:          *faultSeed,
		}
	}
	fmt.Printf("PeriGuard fleet: %d devices, %d shards, batch %d, seed %d (attest %v, rollout %v)\n",
		*devices, *shards, *batch, *seed, *attestOn || *rollout || *rogues > 0, *rollout)
	start := time.Now()
	res, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("completed in %v (build %v, run %v)\n",
		time.Since(start).Round(time.Millisecond),
		res.BuildWall.Round(time.Millisecond),
		res.RunWall.Round(time.Millisecond))
	if res.RequestedBatch != res.EffectiveBatch {
		fmt.Printf("note: requested TA batch %d clamped to the enclave maximum %d\n",
			res.RequestedBatch, res.EffectiveBatch)
	}
	fmt.Println()

	// Latencies below are virtual milliseconds: cycles / 1e6 at 1 GHz.
	groups := metrics.NewTable("Per-mode results",
		"group", "devices", "items", "items/s(wall)", "p50(vms)", "p99(vms)",
		"cloud events", "sens tokens", "person frames")
	for _, k := range res.GroupKeys() {
		g := res.Groups[k]
		groups.AddRow(k.String(), g.Devices, g.Items,
			metrics.Throughput(g.Items, res.RunWall.Seconds()),
			g.Latency.Percentile(50)/1e6,
			g.Latency.Percentile(99)/1e6,
			g.CloudEvents, g.SensitiveTokens, g.PersonFrames)
	}
	fmt.Println(groups)

	shardsTbl := metrics.NewTable("Ingest shards",
		"shard", "w", "devices", "frames", "errors", "rejected", "rej why", "shed", "prio",
		"rebal", "queue peak", "drained", "model versions")
	for _, s := range res.ShardStats {
		shardsTbl.AddRow(s.Name, s.Weight, s.Devices, s.Frames, s.Errors, s.Rejected,
			rejectReasons(s), s.Shed, s.Prioritized, s.Rebalanced, s.QueuePeak, s.Drained,
			versionString(res.ShardModelVersions[s.Name]))
	}
	fmt.Println(shardsTbl)

	if res.Joined > 0 || res.Left > 0 {
		fmt.Printf("churn: %d joined mid-run, %d left cleanly\n", res.Joined, res.Left)
	}
	if rb := res.Rebalance; rb != nil && rb.Fired {
		fmt.Printf("rebalance: added %v, drained %q, %d frames redirected\n",
			rb.AddedShards, rb.DrainedShard, res.RebalancedFrames())
	}
	fmt.Printf("admission: policy %s, %d shed, %d priority-lane frames\n",
		res.PolicyName, res.ShedFrames(), res.PriorityFrames())
	if ar := res.Async; ar != nil {
		fmt.Printf("async engine: %d executors drove %d steps (%d groups parked), peak %d live pipelines\n",
			ar.Executors, ar.Steps, ar.Parks, ar.PeakLive)
	}
	if sr := res.Sched; sr != nil {
		fmt.Printf("scheduler: %d items in %d batches (occupancy mean %.2f, steady %.2f, max %d), "+
			"flushes %s, %d pressure-cut\n",
			sr.Items, sr.Batches, sr.MeanOccupancy, sr.MeanOccupancySteady, sr.MaxOccupancy,
			flushString(sr.Flushes), sr.PressureFlushes)
		fmt.Printf("scheduler queues: items per model version %s, %d mixed-version flushes\n",
			versionString(versionCounts(sr.ItemsByVersion)), sr.MixedVersionFlushes)
	}
	if f := res.Faults; f != nil {
		fmt.Printf("chaos: %d devices touched, %d faults injected "+
			"(%d drops, %d dups, %d delays, %d blackholes), %d TEE faults\n",
			f.Touched, f.Injected, f.Drops, f.Duplicates, f.Delays, f.Blackholes, f.TEEFaults)
		fmt.Printf("recovery: %d crashes -> %d restarts replaying %d stranded frames; "+
			"%d retries recovered %d frames, %d expired, %d duplicates deduplicated\n",
			f.Crashes, f.Restarts, f.Recovered, f.Retries, f.RetryRecovered,
			f.Expired, f.DuplicatesDropped)
	}

	if res.AttestedDevices > 0 {
		fmt.Printf("attestation: %d devices attested; fleet model versions %s; "+
			"rogue frames %d/%d rejected, %d unattested events ingested\n",
			res.AttestedDevices, versionString(res.ModelVersions),
			res.RogueRejected, res.RogueAttempts, res.UnattestedIngested)
	}
	if res.Rotated > 0 || res.Revoked > 0 {
		fmt.Printf("lifecycle: %d keys rotated (epochs %s), %d devices revoked, "+
			"%d/%d post-revocation probes rejected\n",
			res.Rotated, epochString(res.KeyEpochs),
			res.Revoked, res.RevokeRejected, res.RevokeProbes)
	}
	if len(res.TenantAttested) > 0 {
		tenants := make([]string, 0, len(res.TenantAttested))
		for tnt := range res.TenantAttested {
			tenants = append(tenants, tnt)
		}
		sort.Strings(tenants)
		parts := make([]string, len(tenants))
		for i, tnt := range tenants {
			parts[i] = fmt.Sprintf("%s:%d", tnt, res.TenantAttested[tnt])
		}
		fmt.Printf("federation: attested per tenant %s\n", strings.Join(parts, " "))
	}
	if r := res.Rollout; r != nil {
		fmt.Printf("rollout: v%d -> v%d, canary %d, converged %v, ingest minimum v%d\n",
			r.BaseVersion, r.ToVersion, r.Canary, r.Converged, r.MinVersion)
		if r.AbortReason != "" {
			fmt.Printf("rollout aborted (%s): %d devices held on v%d with rollback records\n",
				r.AbortReason, len(r.Rollbacks), r.BaseVersion)
		}
	}

	fmt.Printf("aggregate: %d items at %.0f items/s; ingested %d cloud events (%d lost); "+
		"provider observed %d tokens, %d sensitive, %d audio bytes\n",
		res.TotalItems, res.Throughput(), res.IngestedFrames(), res.LostFrames(),
		res.Audit.TokensSeen, res.Audit.SensitiveTokens, res.Audit.AudioBytes)
	fmt.Printf("batched inference latency: p50 %.2f vms, p99 %.2f vms (virtual ms at 1 GHz)\n",
		res.Latency.Percentile(50)/1e6, res.Latency.Percentile(99)/1e6)

	if *jsonPath != "" {
		if err := writeSnapshot(*jsonPath, res); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", *jsonPath)
	}

	if tel := res.Telemetry; tel != nil {
		fmt.Printf("telemetry: 1-in-%d sampling, %d devices traced (%d skipped), %d spans, %d anomalies\n",
			tel.SampleEvery, tel.SampledDevices(), tel.UnsampledDevices,
			tel.SpanCount(), len(tel.Anomalies))
		for _, a := range tel.Anomalies {
			fmt.Printf("  anomaly %s: %s\n", a.Kind, a.Detail)
		}
		// The dump goes last so `periguard-fleet -trace | periguard-trace
		// -timeline` works: ParseDump skips everything before the header.
		if err := tel.WriteDump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// rejectReasons renders a shard's per-reason rejection split like
// "rev:4 pol:2" (zero reasons omitted, "-" when nothing was rejected).
func rejectReasons(s cloud.ShardStats) string {
	parts := make([]string, 0, 4)
	for _, r := range []struct {
		label string
		n     uint64
	}{
		{"rev", s.RejectedRevoked},
		{"stale", s.RejectedStale},
		{"forged", s.RejectedForged},
		{"pol", s.RejectedPolicy},
	} {
		if r.n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", r.label, r.n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// snapshot is the stable JSON shape later PRs benchmark against; the
// schema is documented field-for-field in docs/OPERATIONS.md ("snapshot
// schema") and schema_test.go keeps the two from drifting.
type snapshot struct {
	Devices int `json:"devices"`
	Shards  int `json:"shards"`
	// Batch is the TA batch size the invocation asked for;
	// EffectiveBatch is what the enclave actually ran (clamped at
	// core.MaxBatch). Equal unless the request exceeded the cap.
	Batch          int    `json:"batch"`
	EffectiveBatch int    `json:"effective_batch"`
	Seed           uint64 `json:"seed"`
	// Mix is the effective speaker mode mix, keyed by mode name (the
	// defaults-filled spec, so a default run records the 1:1:1 split).
	Mix           map[string]int     `json:"mix"`
	BuildWallMs   float64            `json:"build_wall_ms"`
	RunWallMs     float64            `json:"run_wall_ms"`
	ItemsPerSec   float64            `json:"items_per_sec"`
	TotalItems    int                `json:"total_items"`
	CloudEvents   uint64             `json:"cloud_events"`
	LostFrames    int                `json:"lost_frames"`
	SensTokens    int                `json:"sensitive_tokens"`
	LatencyP50Vms float64            `json:"latency_p50_vms"`
	LatencyP99Vms float64            `json:"latency_p99_vms"`
	Groups        map[string]groupJS `json:"groups"`
	ShardStats    []shardJS          `json:"shard_stats"`

	// Admission/elasticity accounting (admission_policy always present;
	// the counters are omitted when zero, churn/rebalance when inactive).
	AdmissionPolicy  string   `json:"admission_policy"`
	ShedFrames       uint64   `json:"shed_frames,omitempty"`
	PriorityFrames   uint64   `json:"priority_frames,omitempty"`
	RebalancedFrames uint64   `json:"rebalanced_frames,omitempty"`
	Churn            *churnJS `json:"churn,omitempty"`
	Rebalance        *rebalJS `json:"rebalance,omitempty"`

	// Attested-run fields (omitted on plain runs).
	AttestedDevices    int            `json:"attested_devices,omitempty"`
	ModelVersions      map[string]int `json:"model_versions,omitempty"`
	Rollout            *rolloutJS     `json:"rollout,omitempty"`
	RogueAttempts      int            `json:"rogue_attempts,omitempty"`
	RogueRejected      int            `json:"rogue_rejected,omitempty"`
	UnattestedIngested int            `json:"unattested_ingested,omitempty"`

	// Lifecycle/federation fields (omitted outside -rotate/-revoke and
	// -federate runs respectively).
	Lifecycle      *lifecycleJS   `json:"lifecycle,omitempty"`
	TenantAttested map[string]int `json:"tenant_attested,omitempty"`

	// Chaos fields (omitted outside -faults runs).
	Faults *faultJS `json:"faults,omitempty"`

	// Scheduler fields (omitted outside -sched runs).
	Sched *schedJS `json:"sched,omitempty"`

	// Async-engine fields (omitted outside -async runs).
	Async *asyncJS `json:"async,omitempty"`

	// Telemetry fields (omitted outside -trace runs). ItemsPerSecTraced
	// duplicates items_per_sec so the tracing-overhead trajectory is
	// benchmarkable without perturbing the untraced benchgate family.
	ItemsPerSecTraced float64      `json:"items_per_sec_traced,omitempty"`
	Telemetry         *telemetryJS `json:"telemetry,omitempty"`
}

// telemetryJS is the schema-checked telemetry block of a traced run:
// sampling accounting, per-stage virtual-cycle latency quantiles, queue
// and batch occupancy, terminal verdicts, attestation verbs, and the
// flight-recorder anomaly log. Metadata only — no transcript tokens or
// sealed bytes ever appear here.
type telemetryJS struct {
	SampleEvery       int                `json:"sample_every"`
	SampledDevices    int                `json:"sampled_devices"`
	UnsampledDevices  int                `json:"unsampled_devices"`
	Spans             uint64             `json:"spans"`
	Stages            map[string]stageJS `json:"stages"`
	QueueDepthP99     float64            `json:"queue_depth_p99"`
	BatchOccupancyP99 float64            `json:"batch_occupancy_p99"`
	Verdicts          map[string]uint64  `json:"verdicts"`
	Verbs             map[string]uint64  `json:"verbs,omitempty"`
	Flushes           map[string]uint64  `json:"flushes,omitempty"`
	Anomalies         []anomalyJS        `json:"anomalies,omitempty"`
}

// stageJS is one pipeline stage's latency histogram summary (virtual
// cycles at 1 GHz).
type stageJS struct {
	Count     uint64  `json:"count"`
	P50Cycles float64 `json:"p50_cycles"`
	P99Cycles float64 `json:"p99_cycles"`
}

// anomalyJS is one flight-recorder dump trigger (the ring contents stay
// in the text dump; the snapshot records what fired and why).
type anomalyJS struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// lifecycleJS summarizes mid-run key rotation and revocation: rotated
// devices re-attested per key epoch, revoked devices, and how many of
// the post-revocation probe frames the frontend rejected (a correct gate
// rejects all of them).
type lifecycleJS struct {
	Rotated       int            `json:"rotated"`
	KeyEpochs     map[string]int `json:"key_epochs"`
	Revoked       int            `json:"revoked"`
	ProbeAttempts int            `json:"probe_attempts"`
	ProbeRejected int            `json:"probe_rejected"`
}

type groupJS struct {
	Devices     int     `json:"devices"`
	Items       int     `json:"items"`
	ItemsPerSec float64 `json:"items_per_sec"`
	P50Vms      float64 `json:"p50_vms"`
	P99Vms      float64 `json:"p99_vms"`
	CloudEvents int     `json:"cloud_events"`
	SensTokens  int     `json:"sensitive_tokens"`
}

// shardJS carries per-shard counters, including the model version of
// every attested model-bearing device hosted on the shard — the field
// that makes rollout progress observable from the snapshot. Drained
// shards appear with drained=true and their final (retired) counters.
type shardJS struct {
	Name     string `json:"name"`
	Devices  int    `json:"devices"`
	Weight   int    `json:"weight"`
	Frames   uint64 `json:"frames"`
	Errors   uint64 `json:"errors"`
	Rejected uint64 `json:"rejected"`
	// Per-reason split of Rejected (the four sum to it exactly).
	RejectedRevoked uint64         `json:"rejected_revoked,omitempty"`
	RejectedStale   uint64         `json:"rejected_stale,omitempty"`
	RejectedForged  uint64         `json:"rejected_forged,omitempty"`
	RejectedPolicy  uint64         `json:"rejected_policy,omitempty"`
	Shed            uint64         `json:"shed"`
	Prioritized     uint64         `json:"prioritized"`
	Rebalanced      uint64         `json:"rebalanced"`
	QueuePeak       int            `json:"queue_peak"`
	Drained         bool           `json:"drained"`
	ModelVersions   map[string]int `json:"model_versions,omitempty"`
	// Chaos counters (omitted when the shard saw no crash or duplicate).
	Restarts          uint64 `json:"restarts,omitempty"`
	Recovered         uint64 `json:"recovered,omitempty"`
	DuplicatesDropped uint64 `json:"duplicates_dropped,omitempty"`
}

// faultJS summarizes a chaos run: what the plan injected and what the
// recovery machinery did about it. The conservation identity behind it:
// cloud_events + shed_frames + expired == the emitted total, so
// lost_frames stays 0 through crashes, drops and duplicates.
type faultJS struct {
	Injected          uint64 `json:"injected"`
	Recovered         uint64 `json:"recovered"`
	Expired           int    `json:"expired"`
	DuplicatesDropped uint64 `json:"duplicates_dropped"`
	Restarts          uint64 `json:"restarts"`
}

// schedJS summarizes a -sched run's cross-device TEE batch scheduler:
// the effective flush config, flush accounting by reason
// (full/age/idle/drain), occupancy of the shared forward passes, and the
// per-model-version item split. A correct scheduler never mixes model
// versions inside one flush, so mixed_version_flushes must read 0.
// mean_occupancy averages over every flush including the end-of-run
// drain tail (drain_batches flushes carrying drain_items items);
// mean_occupancy_steady excludes the tail and is the figure to compare
// across scheduling modes.
type schedJS struct {
	Batch               int               `json:"batch"`
	MaxAgeCycles        uint64            `json:"max_age_cycles"`
	Batches             uint64            `json:"batches"`
	Items               uint64            `json:"items"`
	MeanOccupancy       float64           `json:"mean_occupancy"`
	MeanOccupancySteady float64           `json:"mean_occupancy_steady"`
	DrainBatches        uint64            `json:"drain_batches"`
	DrainItems          uint64            `json:"drain_items"`
	MaxOccupancy        int               `json:"max_occupancy"`
	Flushes             map[string]uint64 `json:"flushes"`
	ItemsByVersion      map[string]uint64 `json:"items_by_version"`
	MixedVersionFlushes uint64            `json:"mixed_version_flushes"`
	PressureFlushes     uint64            `json:"pressure_flushes"`
}

// asyncJS summarizes an -async run's event-driven engine: the executor
// pool size, executor dispatches, classify groups parked on the shared
// scheduler, and the peak count of concurrently live device pipelines —
// the honest memory figure for large populations.
type asyncJS struct {
	Executors int    `json:"executors"`
	Steps     uint64 `json:"steps"`
	Parks     uint64 `json:"parks"`
	PeakLive  int    `json:"peak_live"`
}

// churnJS summarizes mid-run population churn.
type churnJS struct {
	Joined int `json:"joined"`
	Left   int `json:"left"`
}

// rebalJS summarizes the scheduled mid-run tier rebalance.
type rebalJS struct {
	Fired        bool     `json:"fired"`
	AddedShards  []string `json:"added_shards"`
	DrainedShard string   `json:"drained_shard"`
}

type rolloutJS struct {
	BaseVersion uint64       `json:"base_version"`
	ToVersion   uint64       `json:"to_version"`
	Canary      int          `json:"canary"`
	Converged   bool         `json:"converged"`
	MinVersion  uint64       `json:"min_version"`
	AbortReason string       `json:"abort_reason"`
	Rollbacks   []rollbackJS `json:"rollbacks"`
}

// rollbackJS is one structured rollback record of an aborted rollout.
type rollbackJS struct {
	Device      string `json:"device"`
	FromVersion uint64 `json:"from_version"`
	ToVersion   uint64 `json:"to_version"`
	Reason      string `json:"reason"`
}

// versionKeys renders a version tally with string keys (JSON objects
// cannot have integer keys).
func versionKeys(in map[uint64]int) map[string]int {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]int, len(in))
	for v, n := range in {
		out[fmt.Sprintf("%d", v)] = n
	}
	return out
}

// versionKeys64 is versionKeys for uint64-valued tallies (the
// scheduler's per-version item counts).
func versionKeys64(in map[uint64]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(in))
	for v, n := range in {
		out[fmt.Sprintf("%d", v)] = n
	}
	return out
}

// versionCounts narrows a uint64-valued version tally for the int-based
// render helpers (item counts fit comfortably).
func versionCounts(in map[uint64]uint64) map[uint64]int {
	out := make(map[uint64]int, len(in))
	for v, n := range in {
		out[v] = int(n)
	}
	return out
}

// flushString renders the scheduler's flush-reason tally like
// "full:12 age:3" in fixed reason order.
func flushString(in map[string]uint64) string {
	parts := make([]string, 0, len(in))
	for _, reason := range []string{"full", "age", "idle", "drain"} {
		if n, ok := in[reason]; ok {
			parts = append(parts, fmt.Sprintf("%s:%d", reason, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// versionString renders a tally like "v1:3 v2:61" in version order.
func versionString(in map[uint64]int) string { return tallyString(in, "v") }

// epochString renders a key-epoch tally like "e0:53 e1:11".
func epochString(in map[uint64]int) string { return tallyString(in, "e") }

func tallyString(in map[uint64]int, prefix string) string {
	if len(in) == 0 {
		return "-"
	}
	keys := make([]uint64, 0, len(in))
	for k := range in {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s%d:%d", prefix, k, in[k])
	}
	return strings.Join(parts, " ")
}

// telemetryBlock renders the aggregated obs.Telemetry into the snapshot
// schema: stage histograms collapse to count/p50/p99, verdict and verb
// maps re-key by name, anomalies keep kind+detail only.
func telemetryBlock(tel *obs.Telemetry) *telemetryJS {
	tj := &telemetryJS{
		SampleEvery:       tel.SampleEvery,
		SampledDevices:    tel.SampledDevices(),
		UnsampledDevices:  tel.UnsampledDevices,
		Spans:             tel.SpanCount(),
		Stages:            map[string]stageJS{},
		QueueDepthP99:     tel.Queue.Quantile(0.99),
		BatchOccupancyP99: tel.Batch.Quantile(0.99),
		Verdicts:          map[string]uint64{},
	}
	for _, s := range obs.Stages() {
		h := tel.Stages[s]
		if h == nil || h.Count() == 0 {
			continue
		}
		tj.Stages[s.String()] = stageJS{
			Count:     h.Count(),
			P50Cycles: h.Quantile(0.5),
			P99Cycles: h.Quantile(0.99),
		}
	}
	for _, v := range obs.Verdicts() {
		if n := tel.Verdicts[v]; n > 0 {
			tj.Verdicts[v.String()] = n
		}
	}
	if len(tel.Verbs) > 0 {
		tj.Verbs = make(map[string]uint64, len(tel.Verbs))
		for k, n := range tel.Verbs {
			tj.Verbs[k] = n
		}
	}
	if len(tel.Flushes) > 0 {
		tj.Flushes = make(map[string]uint64, len(tel.Flushes))
		for k, n := range tel.Flushes {
			tj.Flushes[k] = n
		}
	}
	for _, a := range tel.Anomalies {
		tj.Anomalies = append(tj.Anomalies, anomalyJS{Kind: a.Kind, Detail: a.Detail})
	}
	return tj
}

func writeSnapshot(path string, res *fleet.Result) error {
	snap := snapshot{
		Devices:            res.Config.Devices,
		Shards:             res.Config.Shards,
		Batch:              res.RequestedBatch,
		EffectiveBatch:     res.EffectiveBatch,
		Seed:               res.Config.Seed,
		Mix:                res.Config.Mix.Named(),
		BuildWallMs:        float64(res.BuildWall.Microseconds()) / 1e3,
		RunWallMs:          float64(res.RunWall.Microseconds()) / 1e3,
		ItemsPerSec:        res.Throughput(),
		TotalItems:         res.TotalItems,
		CloudEvents:        res.IngestedFrames(),
		LostFrames:         res.LostFrames(),
		SensTokens:         res.Audit.SensitiveTokens,
		LatencyP50Vms:      res.Latency.Percentile(50) / 1e6,
		LatencyP99Vms:      res.Latency.Percentile(99) / 1e6,
		Groups:             map[string]groupJS{},
		AdmissionPolicy:    res.PolicyName,
		ShedFrames:         res.ShedFrames(),
		PriorityFrames:     res.PriorityFrames(),
		RebalancedFrames:   res.RebalancedFrames(),
		AttestedDevices:    res.AttestedDevices,
		ModelVersions:      versionKeys(res.ModelVersions),
		RogueAttempts:      res.RogueAttempts,
		RogueRejected:      res.RogueRejected,
		UnattestedIngested: res.UnattestedIngested,
	}
	if res.Joined > 0 || res.Left > 0 {
		snap.Churn = &churnJS{Joined: res.Joined, Left: res.Left}
	}
	if res.Rotated > 0 || res.Revoked > 0 {
		snap.Lifecycle = &lifecycleJS{
			Rotated:       res.Rotated,
			KeyEpochs:     versionKeys(res.KeyEpochs),
			Revoked:       res.Revoked,
			ProbeAttempts: res.RevokeProbes,
			ProbeRejected: res.RevokeRejected,
		}
	}
	if len(res.TenantAttested) > 0 {
		snap.TenantAttested = res.TenantAttested
	}
	if sr := res.Sched; sr != nil {
		snap.Sched = &schedJS{
			Batch:               sr.Batch,
			MaxAgeCycles:        uint64(sr.MaxAge),
			Batches:             sr.Batches,
			Items:               sr.Items,
			MeanOccupancy:       sr.MeanOccupancy,
			MeanOccupancySteady: sr.MeanOccupancySteady,
			DrainBatches:        sr.DrainBatches,
			DrainItems:          sr.DrainItems,
			MaxOccupancy:        sr.MaxOccupancy,
			Flushes:             sr.Flushes,
			ItemsByVersion:      versionKeys64(sr.ItemsByVersion),
			MixedVersionFlushes: sr.MixedVersionFlushes,
			PressureFlushes:     sr.PressureFlushes,
		}
	}
	if ar := res.Async; ar != nil {
		snap.Async = &asyncJS{
			Executors: ar.Executors,
			Steps:     ar.Steps,
			Parks:     ar.Parks,
			PeakLive:  ar.PeakLive,
		}
	}
	if f := res.Faults; f != nil {
		snap.Faults = &faultJS{
			Injected:          f.Injected,
			Recovered:         f.Recovered,
			Expired:           f.Expired,
			DuplicatesDropped: f.DuplicatesDropped,
			Restarts:          f.Restarts,
		}
	}
	if rb := res.Rebalance; rb != nil {
		snap.Rebalance = &rebalJS{
			Fired:        rb.Fired,
			AddedShards:  append([]string{}, rb.AddedShards...),
			DrainedShard: rb.DrainedShard,
		}
	}
	for _, k := range res.GroupKeys() {
		g := res.Groups[k]
		snap.Groups[k.String()] = groupJS{
			Devices:     g.Devices,
			Items:       g.Items,
			ItemsPerSec: metrics.Throughput(g.Items, res.RunWall.Seconds()),
			P50Vms:      g.Latency.Percentile(50) / 1e6,
			P99Vms:      g.Latency.Percentile(99) / 1e6,
			CloudEvents: g.CloudEvents,
			SensTokens:  g.SensitiveTokens,
		}
	}
	for _, s := range res.ShardStats {
		snap.ShardStats = append(snap.ShardStats, shardJS{
			Name:              s.Name,
			Devices:           s.Devices,
			Weight:            s.Weight,
			Frames:            s.Frames,
			Errors:            s.Errors,
			Rejected:          s.Rejected,
			RejectedRevoked:   s.RejectedRevoked,
			RejectedStale:     s.RejectedStale,
			RejectedForged:    s.RejectedForged,
			RejectedPolicy:    s.RejectedPolicy,
			Shed:              s.Shed,
			Prioritized:       s.Prioritized,
			Rebalanced:        s.Rebalanced,
			QueuePeak:         s.QueuePeak,
			Drained:           s.Drained,
			ModelVersions:     versionKeys(res.ShardModelVersions[s.Name]),
			Restarts:          s.Restarts,
			Recovered:         s.Recovered,
			DuplicatesDropped: s.DuplicatesDropped,
		})
	}
	if r := res.Rollout; r != nil {
		snap.Rollout = &rolloutJS{
			BaseVersion: r.BaseVersion,
			ToVersion:   r.ToVersion,
			Canary:      r.Canary,
			Converged:   r.Converged,
			MinVersion:  r.MinVersion,
			AbortReason: r.AbortReason,
			Rollbacks:   []rollbackJS{},
		}
		for _, rb := range r.Rollbacks {
			snap.Rollout.Rollbacks = append(snap.Rollout.Rollbacks, rollbackJS{
				Device:      rb.Device,
				FromVersion: rb.FromVersion,
				ToVersion:   rb.ToVersion,
				Reason:      rb.Reason,
			})
		}
	}
	if tel := res.Telemetry; tel != nil {
		snap.ItemsPerSecTraced = res.Throughput()
		snap.Telemetry = telemetryBlock(tel)
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
