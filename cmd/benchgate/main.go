// Command benchgate is the CI bench-regression gate: it parses `go test
// -bench` output for the fleet benchmarks' wall-clock `items/s` metric
// and compares each benchmark family's best point against the committed
// perf trajectory (BENCH_fleet.json's `items_per_sec`). A family whose
// best point falls more than the allowed fraction below the baseline
// fails the gate — the committed snapshot and the benchmarks measure the
// same worker-bound fleet pipeline, so they track each other across
// code changes on the same runner class.
//
//	go test -run '^$' -bench 'BenchmarkFleetThroughput$|BenchmarkFleetChurn$|BenchmarkFleetScheduled$|BenchmarkFleetHybridHE$' -benchtime 3x . | tee bench.txt
//	go run ./cmd/benchgate -bench bench.txt -baseline BENCH_fleet.json -max-regress 0.25
//
// The family *best* is gated, not every point: sub-benchmarks span
// configurations (16-device fleets, 30% churn) whose throughput differs
// by design, and a config's inherent cost is not a regression. With
// -warn-only (pull requests from forks, whose runners we do not control)
// regressions are reported but the exit code stays 0. If the gate fires
// on an intentional perf change, regenerate the baseline:
//
//	go run ./cmd/periguard-fleet -devices 1000 -shards 8 -json BENCH_fleet.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	benchPath := fs.String("bench", "", "path to captured `go test -bench` output")
	basePath := fs.String("baseline", "BENCH_fleet.json", "committed snapshot holding the items_per_sec baseline")
	maxRegress := fs.Float64("max-regress", 0.25, "allowed fractional drop below the baseline")
	warnOnly := fs.Bool("warn-only", false, "report regressions without failing (forked-PR runners)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchPath == "" {
		return fmt.Errorf("-bench is required")
	}
	benchOut, err := os.ReadFile(*benchPath)
	if err != nil {
		return err
	}
	baseline, err := readBaseline(*basePath)
	if err != nil {
		return err
	}
	results, err := gate(benchOut, baseline, *maxRegress)
	if err != nil {
		return err
	}
	failed := false
	for _, r := range results {
		status := "ok"
		if r.Regressed {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s best %8.1f items/s  baseline %8.1f  floor %8.1f  %s\n",
			r.Family, r.Best, baseline, baseline*(1-*maxRegress), status)
	}
	if failed {
		if *warnOnly {
			fmt.Println("bench regression detected (warn-only: not failing a forked-PR run)")
			return nil
		}
		return fmt.Errorf("throughput regressed more than %.0f%% below %s; if intentional, regenerate the baseline (see command doc)",
			*maxRegress*100, *basePath)
	}
	return nil
}

// families are the gated benchmark name prefixes (everything before the
// first '/').
var families = []string{"BenchmarkFleetThroughput", "BenchmarkFleetChurn", "BenchmarkFleetScheduled", "BenchmarkFleetHybridHE"}

// familyResult is one gated family's verdict.
type familyResult struct {
	Family    string
	Best      float64 // best items/s across the family's sub-benchmarks
	Regressed bool
}

// readBaseline extracts items_per_sec from the committed snapshot.
func readBaseline(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var snap struct {
		ItemsPerSec float64 `json:"items_per_sec"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return 0, fmt.Errorf("baseline %s: %w", path, err)
	}
	if snap.ItemsPerSec <= 0 {
		return 0, fmt.Errorf("baseline %s has no items_per_sec", path)
	}
	return snap.ItemsPerSec, nil
}

// gate parses the bench output and judges each family's best items/s
// against the baseline floor. A family with no parsed points is an
// error — a renamed or silently-skipped benchmark must not pass the
// gate by absence.
func gate(benchOut []byte, baseline, maxRegress float64) ([]familyResult, error) {
	best := parseItemsPerSec(benchOut)
	floor := baseline * (1 - maxRegress)
	out := make([]familyResult, 0, len(families))
	for _, fam := range families {
		v, ok := best[fam]
		if !ok {
			return nil, fmt.Errorf("no %s items/s points in the bench output", fam)
		}
		out = append(out, familyResult{Family: fam, Best: v, Regressed: v < floor})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out, nil
}

// parseItemsPerSec scans `go test -bench` output lines for the items/s
// ReportMetric and keeps the best value per benchmark family.
func parseItemsPerSec(benchOut []byte) map[string]float64 {
	best := make(map[string]float64)
	for _, line := range strings.Split(string(benchOut), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		family := fields[0]
		if i := strings.IndexByte(family, '/'); i >= 0 {
			family = family[:i]
		}
		for i := 1; i < len(fields); i++ {
			if fields[i] != "items/s" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			if v > best[family] {
				best[family] = v
			}
		}
	}
	return best
}
