package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFleetThroughput/devices=16/shards=2     3   31591668 ns/op   948.0 items/s   2138 virtual-us-p99/item
BenchmarkFleetThroughput/devices=64/shards=8     3  120105906 ns/op   1083 items/s    2161 virtual-us-p99/item
BenchmarkFleetChurn/churn=0%                     3  121848393 ns/op   1056 items/s    11.00 priority-frames
BenchmarkFleetChurn/churn=30%                    3  146768288 ns/op   934.0 items/s   12.00 priority-frames
BenchmarkFleetScheduled/sched=off                3  130105906 ns/op   1095 items/s    2366 virtual-us-p99/item
BenchmarkFleetScheduled/sched=on                 3  110105906 ns/op   4.000 items/flush   1290 items/s   2638 virtual-us-p99/item
BenchmarkFleetHybridHE/mix=all-modes             3  146409797 ns/op   976.0 items/s   62364 virtual-us-p99/item
BenchmarkSubstrateSMC-16                  1000000  100 ns/op
PASS
`

func TestParseItemsPerSecKeepsFamilyBest(t *testing.T) {
	best := parseItemsPerSec([]byte(sampleBench))
	if got := best["BenchmarkFleetThroughput"]; got != 1083 {
		t.Fatalf("throughput best = %v, want 1083", got)
	}
	if got := best["BenchmarkFleetChurn"]; got != 1056 {
		t.Fatalf("churn best = %v, want 1056", got)
	}
	if got := best["BenchmarkFleetScheduled"]; got != 1290 {
		t.Fatalf("scheduled best = %v, want 1290 (the items/s metric, not items/flush)", got)
	}
	if got := best["BenchmarkFleetHybridHE"]; got != 976 {
		t.Fatalf("hybrid-he best = %v, want 976", got)
	}
	if _, ok := best["BenchmarkSubstrateSMC-16"]; ok {
		t.Fatal("picked up an items/s value from a benchmark that reports none")
	}
}

func TestGateVerdicts(t *testing.T) {
	// Baseline 1200, 25% slack → floor 900: both families pass.
	results, err := gate([]byte(sampleBench), 1200, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Regressed {
			t.Fatalf("%s flagged at floor 900: %+v", r.Family, r)
		}
	}
	// Tighter slack → floor 1068: the churn family (best 1056) fails,
	// the throughput family (best 1083) still clears it.
	results, err = gate([]byte(sampleBench), 1200, 0.11)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]bool{}
	for _, r := range results {
		verdicts[r.Family] = r.Regressed
	}
	if verdicts["BenchmarkFleetChurn"] != true || verdicts["BenchmarkFleetThroughput"] != false {
		t.Fatalf("verdicts at floor 1068: %v", verdicts)
	}
	// A family absent from the output is an error, not a silent pass.
	if _, err := gate([]byte("BenchmarkFleetChurn/churn=0% 3 1 ns/op 1000 items/s\n"), 1200, 0.25); err == nil {
		t.Fatal("missing family must fail the gate")
	}
}

func TestRunAgainstCommittedBaseline(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_fleet.json")
	base, err := readBaseline(baseline)
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	// Synthesize bench output 10% below the committed trajectory: inside
	// the shipped 25% slack, outside a 5% one — both exits exercised
	// against the real baseline file.
	lines := fmt.Sprintf(
		"BenchmarkFleetThroughput/devices=64/shards=8 3 1 ns/op %.1f items/s\n"+
			"BenchmarkFleetChurn/churn=0%% 3 1 ns/op %.1f items/s\n"+
			"BenchmarkFleetScheduled/sched=on 3 1 ns/op %.1f items/s\n"+
			"BenchmarkFleetHybridHE/mix=all-modes 3 1 ns/op %.1f items/s\n",
		base*0.9, base*0.9, base*0.9, base*0.9)
	bench := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(bench, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", bench, "-baseline", baseline}); err != nil {
		t.Fatalf("gate at default slack: %v", err)
	}
	if err := run([]string{"-bench", bench, "-baseline", baseline, "-max-regress", "0.05"}); err == nil {
		t.Fatal("a 10% drop must fail a 5% gate")
	}
	if err := run([]string{"-bench", bench, "-baseline", baseline, "-max-regress", "0.05", "-warn-only"}); err != nil {
		t.Fatalf("warn-only must not fail: %v", err)
	}
}
