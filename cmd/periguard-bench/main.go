// Command periguard-bench regenerates every table and figure of the
// evaluation (DESIGN.md §5 / EXPERIMENTS.md): run it with no arguments for
// the full suite, or name experiments (e1 e2 ... e18) to run a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/tz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "periguard-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("periguard-bench", flag.ContinueOnError)
	seed := fs.Uint64("seed", experiments.DefaultSeed, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	selected := fs.Args()
	want := func(id string) bool {
		if len(selected) == 0 {
			return true
		}
		for _, s := range selected {
			if s == id {
				return true
			}
		}
		return false
	}

	type experiment struct {
		id  string
		run func() error
	}
	suite := []experiment{
		{"e1", func() error {
			tbl, _, err := experiments.E1WorldSwitch(1000, tz.DefaultCostModel())
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e2", func() error {
			fig, _, err := experiments.E2CaptureSweep()
			if err != nil {
				return err
			}
			fmt.Println(fig)
			return nil
		}},
		{"e3", func() error {
			tbl, _, err := experiments.E3Classifiers(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e3b", func() error {
			fig, _, err := experiments.E3bNoiseRobustness(*seed)
			if err != nil {
				return err
			}
			fmt.Println(fig)
			return nil
		}},
		{"e4", func() error {
			tbl, _, err := experiments.E4PipelineBreakdown(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e5", func() error {
			tbl, _, err := experiments.E5Leakage(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e6", func() error {
			tbl, byModule, _, err := experiments.E6TCB()
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			fmt.Println(byModule)
			return nil
		}},
		{"e7", func() error {
			tbl, _, err := experiments.E7Energy(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e8", func() error {
			tbl, _, err := experiments.E8Snoop(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e9", func() error {
			fig, _, err := experiments.E9Scale(*seed)
			if err != nil {
				return err
			}
			fmt.Println(fig)
			return nil
		}},
		{"e10", func() error {
			tbl, _, err := experiments.E10FleetScale(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e11", func() error {
			tbl, _, err := experiments.E11AttestedRollout(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e12", func() error {
			tbl, _, err := experiments.E12ElasticFleet(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e13", func() error {
			tbl, _, err := experiments.E13AttestationLifecycle(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e14", func() error {
			tbl, _, err := experiments.E14FrameTelemetry(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e15", func() error {
			tbl, _, err := experiments.E15ChaosFleet(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e16", func() error {
			tbl, _, err := experiments.E16BatchScheduler(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e17", func() error {
			tbl, _, err := experiments.E17AsyncPipeline(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
		{"e18", func() error {
			tbl, _, err := experiments.E18HybridHE(*seed)
			if err != nil {
				return err
			}
			fmt.Println(tbl)
			return nil
		}},
	}

	fmt.Printf("PeriGuard experiment harness (seed %d)\n\n", *seed)
	for _, e := range suite {
		if !want(e.id) {
			continue
		}
		start := time.Now()
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
