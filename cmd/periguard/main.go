// Command periguard runs one end-to-end PeriGuard session and prints both
// sides of the privacy story: what the device heard, and what the cloud
// provider (and a compromised OS) actually got to see.
//
// Usage:
//
//	periguard [-mode baseline|secure-nofilter|secure-filter]
//	          [-policy block|redact|pass-through] [-arch cnn|transformer|hybrid]
//	          [-n utterances] [-seed n] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "periguard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("periguard", flag.ContinueOnError)
	modeFlag := fs.String("mode", "secure-filter", "deployment: baseline, secure-nofilter, secure-filter")
	policyFlag := fs.String("policy", "block", "filter policy: block, redact, pass-through")
	archFlag := fs.String("arch", "cnn", "classifier: cnn, transformer, hybrid")
	n := fs.Int("n", 8, "number of utterances")
	seed := fs.Uint64("seed", 42, "random seed")
	verbose := fs.Bool("v", false, "print per-utterance detail")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mode, err := parseMode(*modeFlag)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(*policyFlag)
	if err != nil {
		return err
	}
	arch, err := parseArch(*archFlag)
	if err != nil {
		return err
	}

	utts, err := repro.GenerateUtterances(*n, 0.4, *seed)
	if err != nil {
		return err
	}
	sys, err := repro.New(repro.Config{Mode: mode, Policy: policy, Arch: arch, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("PeriGuard %s — mode=%s policy=%s arch=%s seed=%d\n\n",
		repro.Version, mode, policy, arch, *seed)
	res, err := sys.Run(utts)
	if err != nil {
		return err
	}

	if *verbose {
		fmt.Println("utterances:")
		for i, u := range res.Utterances {
			status := "forwarded"
			if !u.Forwarded {
				status = "BLOCKED"
			} else if u.Redacted > 0 {
				status = fmt.Sprintf("forwarded (%d redacted)", u.Redacted)
			}
			label := "benign"
			if u.Sensitive {
				label = "SENSITIVE"
			}
			fmt.Printf("  %2d. [%-9s] %-45q -> %s\n", i+1, label, strings.Join(u.Words, " "), status)
			if len(u.Transcript) > 0 {
				fmt.Printf("      device heard: %q\n", strings.Join(u.Transcript, " "))
			}
		}
		fmt.Println()
	}

	fmt.Println("privacy outcome:")
	fmt.Printf("  cloud observed:        %d tokens (%d sensitive), %d raw audio bytes\n",
		res.CloudTokens, res.CloudSensitiveTokens, res.CloudAudioBytes)
	fmt.Printf("  compromised OS snoops: %d/%d blocked by TrustZone, %d bytes recovered\n",
		res.SnoopBlocked, res.SnoopAttempts, res.SnoopBytesRecovered)
	fmt.Printf("  supplicant plaintext:  %d sensitive tokens\n", res.SupplicantLeaks)
	fmt.Printf("  false-block rate:      %.0f%%\n", res.FalseBlockRate*100)
	fmt.Println("performance outcome:")
	fmt.Printf("  mean latency:          %.0f cycles (%.2f virtual ms @1GHz)\n",
		res.MeanLatencyCycles, res.MeanLatencyCycles/1e6)
	fmt.Printf("  world switches:        %d\n", res.WorldSwitches)
	fmt.Printf("  radio traffic:         %d bytes\n", res.RadioBytes)
	fmt.Printf("  energy:                %.2f mJ total (%.2f compute, %.2f radio)\n",
		res.EnergyTotalMJ, res.EnergyComputeMJ, res.EnergyRadioMJ)
	return nil
}

func parseMode(s string) (repro.Mode, error) {
	switch s {
	case "baseline":
		return repro.Baseline, nil
	case "secure-nofilter":
		return repro.SecureNoFilter, nil
	case "secure-filter":
		return repro.SecureFilter, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parsePolicy(s string) (repro.Policy, error) {
	switch s {
	case "block":
		return repro.Block, nil
	case "redact":
		return repro.Redact, nil
	case "pass-through":
		return repro.PassThrough, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseArch(s string) (repro.Arch, error) {
	switch s {
	case "cnn":
		return repro.CNN, nil
	case "transformer":
		return repro.Transformer, nil
	case "hybrid":
		return repro.Hybrid, nil
	default:
		return 0, fmt.Errorf("unknown arch %q", s)
	}
}
