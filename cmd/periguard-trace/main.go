// Command periguard-trace runs the paper's §IV.2 TCB-minimization
// workflow: trace one capture task, print the minimal function set, the
// image size reductions, and the conditional-compilation directives that
// would strip the unused driver code from the OP-TEE image.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "periguard-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("periguard-trace", flag.ContinueOnError)
	showDirectives := fs.Bool("directives", false, "print the exclude directives")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := repro.MinimizeTCB()
	if err != nil {
		return err
	}
	fmt.Println("traced task: record-a-sound (I2S capture)")
	fmt.Printf("functions executed: %d\n\n", len(report.TracedFunctions))
	for _, fn := range report.TracedFunctions {
		fmt.Printf("  %s\n", fn)
	}
	fmt.Printf("\nfull driver image:    %4d functions, %6d LoC, %7d bytes\n",
		report.FullFunctions, report.FullLoC, report.FullBytes)
	fmt.Printf("minimal OP-TEE image: %4d functions, %6d LoC, %7d bytes\n",
		report.MinimalFunctions, report.MinimalLoC, report.MinimalBytes)
	fmt.Printf("TCB reduction:        %.1f%% of driver LoC removed\n", report.LoCReductionPct)
	if *showDirectives {
		fmt.Printf("\nconditional-compilation directives (%d):\n", len(report.ExcludeDirectives))
		for _, d := range report.ExcludeDirectives {
			fmt.Printf("  %s\n", d)
		}
	} else {
		fmt.Printf("\n(%d exclude directives; rerun with -directives to list them)\n",
			len(report.ExcludeDirectives))
	}
	return nil
}
