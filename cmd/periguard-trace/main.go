// Command periguard-trace has two modes. By default it runs the paper's
// §IV.2 TCB-minimization workflow: trace one capture task, print the
// minimal function set, the image size reductions, and the
// conditional-compilation directives that would strip the unused driver
// code from the OP-TEE image.
//
// With -timeline it is the fleet-telemetry viewer instead: it reads a
// frame-trace dump (stdin, or a file via -in) and renders per-device
// span timelines in virtual time, so
//
//	periguard-fleet -devices 64 -trace -trace-sample 1 | periguard-trace -timeline
//
// prints what every sampled frame did at each pipeline stage and which
// verdict terminated it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "periguard-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("periguard-trace", flag.ContinueOnError)
	showDirectives := fs.Bool("directives", false, "print the exclude directives")
	timeline := fs.Bool("timeline", false, "render a fleet frame-trace dump as per-device timelines")
	inPath := fs.String("in", "", "trace dump to read with -timeline (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeline {
		return renderTimeline(*inPath)
	}

	report, err := repro.MinimizeTCB()
	if err != nil {
		return err
	}
	fmt.Println("traced task: record-a-sound (I2S capture)")
	fmt.Printf("functions executed: %d\n\n", len(report.TracedFunctions))
	for _, fn := range report.TracedFunctions {
		fmt.Printf("  %s\n", fn)
	}
	fmt.Printf("\nfull driver image:    %4d functions, %6d LoC, %7d bytes\n",
		report.FullFunctions, report.FullLoC, report.FullBytes)
	fmt.Printf("minimal OP-TEE image: %4d functions, %6d LoC, %7d bytes\n",
		report.MinimalFunctions, report.MinimalLoC, report.MinimalBytes)
	fmt.Printf("TCB reduction:        %.1f%% of driver LoC removed\n", report.LoCReductionPct)
	if *showDirectives {
		fmt.Printf("\nconditional-compilation directives (%d):\n", len(report.ExcludeDirectives))
		for _, d := range report.ExcludeDirectives {
			fmt.Printf("  %s\n", d)
		}
	} else {
		fmt.Printf("\n(%d exclude directives; rerun with -directives to list them)\n",
			len(report.ExcludeDirectives))
	}
	return nil
}

// renderTimeline parses a trace dump and renders it. ParseDump skips any
// preamble before the dump header, so piping the whole periguard-fleet
// stdout through works without cleanup.
func renderTimeline(path string) error {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tel, err := obs.ParseDump(r)
	if err != nil {
		return err
	}
	return tel.RenderTimeline(os.Stdout)
}
