package repro

import (
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	utts, err := GenerateUtterances(8, 0.5, 3)
	if err != nil {
		t.Fatalf("GenerateUtterances: %v", err)
	}
	if len(utts) != 8 {
		t.Fatalf("got %d utterances", len(utts))
	}

	base, err := New(Config{Mode: Baseline, Seed: 5})
	if err != nil {
		t.Fatalf("New baseline: %v", err)
	}
	baseRes, err := base.Run(utts)
	if err != nil {
		t.Fatalf("Run baseline: %v", err)
	}
	secure, err := New(Config{Mode: SecureFilter, Policy: Block, Arch: CNN, Seed: 5})
	if err != nil {
		t.Fatalf("New secure: %v", err)
	}
	secureRes, err := secure.Run(utts)
	if err != nil {
		t.Fatalf("Run secure: %v", err)
	}

	// The headline reproduction: the design removes both leak channels.
	if baseRes.SnoopBytesRecovered == 0 {
		t.Error("baseline OS snoop recovered nothing")
	}
	if secureRes.SnoopBytesRecovered != 0 {
		t.Errorf("secure OS snoop recovered %d bytes", secureRes.SnoopBytesRecovered)
	}
	if baseRes.CloudSensitiveTokens == 0 {
		t.Error("baseline cloud saw no sensitive tokens")
	}
	if secureRes.CloudSensitiveTokens >= baseRes.CloudSensitiveTokens {
		t.Errorf("filter did not reduce cloud leakage: %d vs %d",
			secureRes.CloudSensitiveTokens, baseRes.CloudSensitiveTokens)
	}
	// And costs performance, as the paper predicts.
	if secureRes.MeanLatencyCycles <= baseRes.MeanLatencyCycles {
		t.Error("secure mode not slower than baseline")
	}
	if secureRes.WorldSwitches == 0 || baseRes.WorldSwitches != 0 {
		t.Errorf("world switches: secure=%d baseline=%d", secureRes.WorldSwitches, baseRes.WorldSwitches)
	}
	if len(secureRes.Utterances) != len(utts) {
		t.Errorf("per-utterance reports: %d", len(secureRes.Utterances))
	}
	if s := secureRes.String(); !strings.Contains(s, "secure-filter") {
		t.Errorf("Result.String() = %q", s)
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	sys, err := New(Config{Mode: SecureFilter}) // all defaults
	if err != nil {
		t.Fatalf("New with defaults: %v", err)
	}
	utts, err := GenerateUtterances(2, 0.5, 1)
	if err != nil {
		t.Fatalf("GenerateUtterances: %v", err)
	}
	if _, err := sys.Run(utts); err != nil {
		t.Errorf("Run with defaults: %v", err)
	}
}

func TestPublicAPIBadMode(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Mode: Mode(99)}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if Baseline.String() != "baseline" || SecureFilter.String() != "secure-filter" {
		t.Error("mode strings wrong")
	}
	if CNN.String() != "cnn" || Transformer.String() != "transformer" || Hybrid.String() != "hybrid" {
		t.Error("arch strings wrong")
	}
	if PassThrough.String() != "pass-through" || Redact.String() != "redact" || Block.String() != "block" {
		t.Error("policy strings wrong")
	}
}

func TestCameraFilter(t *testing.T) {
	filter, err := TrainCameraFilter(7)
	if err != nil {
		t.Fatalf("TrainCameraFilter: %v", err)
	}
	if filter.ParamCount() <= 0 {
		t.Error("degenerate camera filter")
	}
	correct := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		person := i%2 == 1
		frame := SyntheticFrame(person, uint64(1000+i))
		got, err := filter.Sensitive(frame)
		if err != nil {
			t.Fatalf("Sensitive: %v", err)
		}
		if got == person {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.85 {
		t.Errorf("camera filter accuracy = %v, want >= 0.85", acc)
	}
	// Malformed frame.
	if _, err := filter.Sensitive(Image{W: 2, H: 2, Pix: []uint8{1}}); err == nil {
		t.Error("inconsistent image accepted")
	}
}

func TestSyntheticFrameDeterminism(t *testing.T) {
	a := SyntheticFrame(true, 3)
	b := SyntheticFrame(true, 3)
	if a.W != b.W || a.H != b.H {
		t.Fatal("dims differ")
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different frames")
		}
	}
}

func TestMinimizeTCB(t *testing.T) {
	report, err := MinimizeTCB()
	if err != nil {
		t.Fatalf("MinimizeTCB: %v", err)
	}
	if report.MinimalFunctions >= report.FullFunctions {
		t.Errorf("minimal %d functions vs full %d", report.MinimalFunctions, report.FullFunctions)
	}
	if report.LoCReductionPct < 30 {
		t.Errorf("LoC reduction = %v%%, want >= 30%%", report.LoCReductionPct)
	}
	if len(report.TracedFunctions) == 0 || len(report.ExcludeDirectives) == 0 {
		t.Error("report missing traced functions or directives")
	}
	// The traced set must include the capture entry points and exclude
	// the USB subsystem.
	joined := strings.Join(report.TracedFunctions, " ")
	if !strings.Contains(joined, "pcm_read") || !strings.Contains(joined, "i2s_probe") {
		t.Errorf("traced set incomplete: %v", report.TracedFunctions)
	}
	if strings.Contains(joined, "usb_") {
		t.Errorf("traced set contains USB functions: %v", report.TracedFunctions)
	}
	dirJoined := strings.Join(report.ExcludeDirectives, " ")
	if !strings.Contains(dirJoined, "USB_AUDIO_PROBE") {
		t.Errorf("directives missing USB exclusion: %v", report.ExcludeDirectives)
	}
}

func TestCameraPipelinePublicAPI(t *testing.T) {
	day := []bool{false, true, false, true, false}
	base, err := NewCameraPipeline(Baseline, 3)
	if err != nil {
		t.Fatalf("NewCameraPipeline baseline: %v", err)
	}
	baseRes, err := base.Run(day)
	if err != nil {
		t.Fatalf("Run baseline: %v", err)
	}
	secure, err := NewCameraPipeline(SecureFilter, 3)
	if err != nil {
		t.Fatalf("NewCameraPipeline secure: %v", err)
	}
	secureRes, err := secure.Run(day)
	if err != nil {
		t.Fatalf("Run secure: %v", err)
	}
	if baseRes.LeakedPersons != 2 {
		t.Errorf("baseline leaked %d person frames, want 2", baseRes.LeakedPersons)
	}
	if secureRes.LeakedPersons != 0 {
		t.Errorf("secure pipeline leaked %d person frames", secureRes.LeakedPersons)
	}
	if secureRes.SnoopBlocked != secureRes.SnoopAttempts {
		t.Errorf("snoop %d/%d blocked", secureRes.SnoopBlocked, secureRes.SnoopAttempts)
	}
	if s := secureRes.String(); !strings.Contains(s, "secure-filter") {
		t.Errorf("String() = %q", s)
	}
	// The no-filter mode is meaningless for cameras.
	if _, err := NewCameraPipeline(SecureNoFilter, 3); err == nil {
		t.Error("no-filter camera pipeline accepted")
	}
}

func TestEmptySession(t *testing.T) {
	sys, err := New(Config{Mode: SecureFilter, Seed: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := sys.Run(nil)
	if err != nil {
		t.Fatalf("Run(nil): %v", err)
	}
	if len(res.Utterances) != 0 || res.CloudTokens != 0 {
		t.Errorf("empty session produced output: %+v", res)
	}
}

func TestGenerateUtterancesValidation(t *testing.T) {
	if _, err := GenerateUtterances(0, 0.5, 1); err == nil {
		t.Error("zero-length workload accepted")
	}
	utts, err := GenerateUtterances(50, 0.4, 9)
	if err != nil {
		t.Fatalf("GenerateUtterances: %v", err)
	}
	sens := 0
	for _, u := range utts {
		if u.Sensitive {
			sens++
		}
	}
	if sens == 0 || sens == len(utts) {
		t.Errorf("degenerate sensitive mix: %d/%d", sens, len(utts))
	}
}
