// Package repro is PeriGuard: a from-scratch Go reproduction of
// "Enhancing IoT Security and Privacy with Trusted Execution Environments
// and Machine Learning" (Yuhala, DSN 2023 Doctoral Forum).
//
// PeriGuard keeps peripheral data (microphone audio, camera frames) out of
// the hands of a compromised OS and an over-curious cloud provider by
// (1) running the peripheral driver inside a simulated Arm TrustZone TEE
// (OP-TEE model) so raw data never touches normal-world memory, and
// (2) transcribing and classifying the data inside a trusted application,
// filtering sensitive content before it is relayed — over an authenticated
// encrypted channel the untrusted supplicant merely ferries — to the cloud.
//
// The package exposes the three pillars of the paper:
//
//   - the end-to-end pipeline (New/Run) across three deployment modes,
//   - the camera-path sensitive-content filter (TrainCameraFilter),
//   - the driver TCB minimization workflow (MinimizeTCB).
//
// Everything underneath — TrustZone machine, physical memory and TZASC,
// I2S bus, kernel, driver, OP-TEE, ML stack, speech recognizer, relay,
// cloud — lives in internal/ packages and is fully simulated, so results
// are deterministic given a seed.
package repro

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/ftrace"
	"repro/internal/ml/classify"
	"repro/internal/ml/train"
	"repro/internal/peripheral"
	"repro/internal/relay"
	"repro/internal/sensitive"
	"repro/internal/tcb"
)

// Mode selects the deployment under test.
type Mode int

const (
	// Baseline runs the driver in the untrusted kernel and ships raw audio
	// to the cloud (the deployment behind the paper's §I leak incidents).
	Baseline Mode = iota + 1
	// SecureNoFilter ports the driver into the TEE but relays full
	// transcripts.
	SecureNoFilter
	// SecureFilter is the paper's complete design: in-TEE driver, in-TEE
	// ML filter, sanitized relay.
	SecureFilter
)

// String returns the mode name.
func (m Mode) String() string { return coreMode(m).String() }

func coreMode(m Mode) core.Mode {
	switch m {
	case Baseline:
		return core.ModeBaseline
	case SecureNoFilter:
		return core.ModeSecureNoFilter
	case SecureFilter:
		return core.ModeSecureFilter
	default:
		return core.Mode(0)
	}
}

// Arch selects the TA classifier architecture (paper §IV.4).
type Arch int

const (
	// CNN is the convolutional text classifier.
	CNN Arch = iota + 1
	// Transformer is the self-attention classifier.
	Transformer
	// Hybrid combines a CNN feature extractor with a transformer head.
	Hybrid
)

// String returns the architecture name.
func (a Arch) String() string { return coreArch(a).String() }

func coreArch(a Arch) classify.Arch {
	switch a {
	case CNN:
		return classify.ArchCNN
	case Transformer:
		return classify.ArchTransformer
	case Hybrid:
		return classify.ArchHybrid
	default:
		return classify.Arch(0)
	}
}

// Policy selects the filter action for flagged utterances.
type Policy int

const (
	// PassThrough forwards everything (no filtering).
	PassThrough Policy = iota + 1
	// Redact replaces private tokens with a placeholder.
	Redact
	// Block drops flagged utterances entirely.
	Block
)

// String returns the policy name.
func (p Policy) String() string { return corePolicy(p).String() }

func corePolicy(p Policy) relay.Policy {
	switch p {
	case PassThrough:
		return relay.PolicyPassThrough
	case Redact:
		return relay.PolicyRedact
	case Block:
		return relay.PolicyBlock
	default:
		return relay.Policy(0)
	}
}

// Config parameterizes a System. The zero value is invalid; Mode is
// required, everything else defaults sensibly (CNN classifier, Block
// policy, 4 KiB DMA buffers, seed 1).
type Config struct {
	Mode Mode
	// Arch selects the classifier (SecureFilter mode only).
	Arch Arch
	// Policy selects the filter action (SecureFilter mode only).
	Policy Policy
	// BufferBytes is the driver DMA buffer size.
	BufferBytes int
	// Seed fixes all randomness end to end.
	Seed uint64
	// NoiseAmp sets the synthetic speaker's background noise.
	NoiseAmp float64
}

// Utterance is one spoken input with its ground-truth label.
type Utterance struct {
	Words     []string
	Sensitive bool
}

// GenerateUtterances produces a labelled smart-home workload: routine
// assistant commands mixed with utterances carrying private content
// (credentials, finances, health), deterministic per seed.
func GenerateUtterances(n int, sensitiveFraction float64, seed uint64) ([]Utterance, error) {
	corpus, err := sensitive.Generate(sensitive.GenConfig{
		N: n, SensitiveFraction: sensitiveFraction, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Utterance, len(corpus))
	for i, u := range corpus {
		out[i] = Utterance{Words: u.Words, Sensitive: u.Sensitive}
	}
	return out, nil
}

// System is one device-plus-cloud instance.
type System struct {
	inner *core.System
}

// New builds a system for the configuration.
func New(cfg Config) (*System, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	inner, err := core.NewSystem(core.Config{
		Mode:     coreMode(cfg.Mode),
		Arch:     coreArch(cfg.Arch),
		Policy:   corePolicy(cfg.Policy),
		BufBytes: cfg.BufferBytes,
		Seed:     cfg.Seed,
		NoiseAmp: cfg.NoiseAmp,
	})
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// UtteranceReport is the per-utterance outcome.
type UtteranceReport struct {
	Words      []string
	Sensitive  bool
	Transcript []string // device-side transcript (secure modes)
	Forwarded  bool
	Redacted   int
	// LatencyCycles is the virtual CPU time the utterance consumed.
	LatencyCycles uint64
}

// Result aggregates one session.
type Result struct {
	Mode Mode

	// Privacy outcomes.
	CloudSensitiveTokens int // private tokens the provider observed
	CloudTokens          int // all tokens the provider observed
	CloudAudioBytes      int // raw audio bytes the provider observed
	SnoopAttempts        int // compromised-OS buffer reads attempted
	SnoopBlocked         int // rejected by the TZASC
	SnoopBytesRecovered  int
	SupplicantLeaks      int // plaintext private tokens seen by the daemon
	FalseBlockRate       float64

	// Performance outcomes.
	MeanLatencyCycles float64
	P99LatencyCycles  float64
	WorldSwitches     uint64
	RadioBytes        uint64
	EnergyTotalMJ     float64
	EnergyComputeMJ   float64
	EnergyRadioMJ     float64

	Utterances []UtteranceReport
}

// Run processes the utterances end to end and returns the aggregate.
func (s *System) Run(utterances []Utterance) (*Result, error) {
	in := make([]sensitive.Utterance, len(utterances))
	for i, u := range utterances {
		in[i] = sensitive.Utterance{Words: u.Words, Sensitive: u.Sensitive}
	}
	res, err := s.inner.RunSession(in)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Mode:                 Mode(res.Mode),
		CloudSensitiveTokens: res.CloudAudit.SensitiveTokens,
		CloudTokens:          res.CloudAudit.TokensSeen,
		CloudAudioBytes:      res.CloudAudit.AudioBytes,
		SnoopAttempts:        res.Snoop.Attempts,
		SnoopBlocked:         res.Snoop.Blocked,
		SnoopBytesRecovered:  res.Snoop.BytesRecovered,
		SupplicantLeaks:      res.SupplicantPlaintextTokens,
		FalseBlockRate:       res.FalseBlockRate(),
		MeanLatencyCycles:    res.Latency.Mean(),
		P99LatencyCycles:     res.Latency.Percentile(99),
		WorldSwitches:        res.MonitorStats.Switches,
		RadioBytes:           res.RadioBytes,
		EnergyTotalMJ:        res.Energy.TotalmJ(),
		EnergyComputeMJ:      res.Energy.CPUmJ + res.Energy.SecuremJ + res.Energy.SwitchmJ,
		EnergyRadioMJ:        res.Energy.RadiomJ,
	}
	for _, u := range res.Utterances {
		out.Utterances = append(out.Utterances, UtteranceReport{
			Words:         u.Truth.Words,
			Sensitive:     u.Truth.Sensitive,
			Transcript:    u.Transcript,
			Forwarded:     u.Forwarded,
			Redacted:      u.Redacted,
			LatencyCycles: uint64(u.Cycles),
		})
	}
	return out, nil
}

// Image is a grayscale camera frame.
type Image struct {
	W, H int
	Pix  []uint8
}

// SyntheticFrame renders a deterministic camera frame; person selects the
// sensitive scene (a person present) versus an empty room.
func SyntheticFrame(person bool, seed uint64) Image {
	scene := peripheral.SceneEmpty
	if person {
		scene = peripheral.ScenePerson
	}
	im := peripheral.SynthesizeImage(scene, seed)
	return Image{W: im.W, H: im.H, Pix: im.Pix}
}

// CameraFilter is the camera-path sensitive-content classifier (paper
// §IV.4: "for an image analysis based system, a pre-trained ML classifier
// alone will be sufficient").
type CameraFilter struct {
	clf *classify.Classifier
}

// TrainCameraFilter trains the image classifier on synthetic frames.
func TrainCameraFilter(seed uint64) (*CameraFilter, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0xca3))
	clf, err := classify.NewImage(rng, 24, 24)
	if err != nil {
		return nil, err
	}
	const n = 160
	samples := make([]train.Sample, 0, n)
	for i := 0; i < n; i++ {
		label := i % 2
		scene := peripheral.SceneEmpty
		if label == 1 {
			scene = peripheral.ScenePerson
		}
		im := peripheral.SynthesizeImage(scene, seed*31+uint64(i))
		samples = append(samples, train.Sample{X: im.Floats(), Y: label})
	}
	if _, err := train.Fit(clf.Model(), train.NewAdam(0.005), samples, train.Config{
		Epochs: 6, BatchSize: 16, Seed: seed, Shape: clf.InputShape(),
	}); err != nil {
		return nil, err
	}
	return &CameraFilter{clf: clf}, nil
}

// Sensitive reports whether the frame contains sensitive content (a
// person). Frames flagged sensitive must not leave the TEE.
func (c *CameraFilter) Sensitive(im Image) (bool, error) {
	if im.W*im.H != len(im.Pix) {
		return false, errors.New("repro: image dimensions inconsistent")
	}
	feats := make([]float32, len(im.Pix))
	for i, p := range im.Pix {
		feats[i] = float32(p) / 255
	}
	cls, err := c.clf.Predict(feats)
	if err != nil {
		return false, err
	}
	return cls == 1, nil
}

// ParamCount returns the camera filter's parameter count.
func (c *CameraFilter) ParamCount() int { return c.clf.ParamCount() }

// TCBReport summarizes driver TCB minimization (paper §IV.2).
type TCBReport struct {
	FullFunctions    int
	FullLoC          int
	FullBytes        int
	MinimalFunctions int
	MinimalLoC       int
	MinimalBytes     int
	LoCReductionPct  float64
	// TracedFunctions are the functions the capture task executed.
	TracedFunctions []string
	// ExcludeDirectives are the conditional-compilation flags that strip
	// everything else from the OP-TEE image.
	ExcludeDirectives []string
}

// MinimizeTCB runs the paper's tracing workflow: execute one capture task
// under the kernel tracer, compute the minimal function set, and build the
// reduced OP-TEE driver image (static-closure policy, so the image is
// link-complete).
func MinimizeTCB() (*TCBReport, error) {
	rig, err := newTCBRig()
	if err != nil {
		return nil, err
	}
	traced, err := rig.traceCaptureTask()
	if err != nil {
		return nil, err
	}
	table, err := driver.BuildTable()
	if err != nil {
		return nil, err
	}
	full := table.FullImage()
	minImg, err := table.BuildImage("capture-minimal", traced, tcb.StaticClosure)
	if err != nil {
		return nil, err
	}
	red := tcb.Compare(full, minImg)
	return &TCBReport{
		FullFunctions:     red.FullFuncs,
		FullLoC:           red.FullLoC,
		FullBytes:         red.FullBytes,
		MinimalFunctions:  red.MinFuncs,
		MinimalLoC:        red.MinLoC,
		MinimalBytes:      red.MinBytes,
		LoCReductionPct:   red.LoCCutPct,
		TracedFunctions:   ftrace.SetNames(traced),
		ExcludeDirectives: table.ExcludeDirectives(minImg),
	}, nil
}

// Version identifies the library.
const Version = "1.0.0"

// String renders a compact result summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"%s: cloud saw %d sensitive tokens (%d total); snoop %d/%d blocked (%d bytes leaked); "+
			"supplicant leaks %d; mean latency %.0f cycles; energy %.2f mJ",
		r.Mode, r.CloudSensitiveTokens, r.CloudTokens,
		r.SnoopBlocked, r.SnoopAttempts, r.SnoopBytesRecovered,
		r.SupplicantLeaks, r.MeanLatencyCycles, r.EnergyTotalMJ)
}
