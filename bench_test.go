package repro

// Benchmarks regenerate every table and figure of the evaluation (DESIGN.md
// §5, EXPERIMENTS.md). Each benchmark wraps the corresponding experiment in
// internal/experiments and reports the *virtual* metric the table/figure
// plots via b.ReportMetric — wall-clock ns/op measures the simulator, the
// virtual cycles measure the modelled platform.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// or one experiment with e.g. -bench=BenchmarkE5Leakage.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/ml/classify"
	"repro/internal/sensitive"
	"repro/internal/tz"
)

// --- E1 (Table-1): world-boundary crossing costs ---------------------------

func BenchmarkE1WorldSwitch(b *testing.B) {
	var last experiments.E1Result
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.E1WorldSwitch(200, tz.DefaultCostModel())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.SMCCycles, "smc-cycles/call")
	b.ReportMetric(last.SyscallCycles, "syscall-cycles/call")
	b.ReportMetric(last.SMCOverSyscall, "smc/syscall-ratio")
}

// BenchmarkE1WorldSwitchSweep ablates the SMC cost parameter (DESIGN.md §7).
func BenchmarkE1WorldSwitchSweep(b *testing.B) {
	for _, switchCycles := range []tz.Cycles{3000, 12000, 48000} {
		b.Run(tz.Cycles(switchCycles).Duration(experiments.FreqHz).String(), func(b *testing.B) {
			cost := tz.DefaultCostModel()
			cost.WorldSwitch = switchCycles
			var last experiments.E1Result
			for i := 0; i < b.N; i++ {
				_, res, err := experiments.E1WorldSwitch(100, cost)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.SMCOverSyscall, "smc/syscall-ratio")
		})
	}
}

// --- E2 (Fig-A): capture cost vs chunk size --------------------------------

func BenchmarkE2CaptureSweep(b *testing.B) {
	var points []experiments.E2Point
	for i := 0; i < b.N; i++ {
		_, p, err := experiments.E2CaptureSweep()
		if err != nil {
			b.Fatal(err)
		}
		points = p
	}
	if len(points) > 0 {
		b.ReportMetric(points[0].OverheadFactor, "overhead-at-256B")
		b.ReportMetric(points[len(points)-1].OverheadFactor, "overhead-at-16KiB")
	}
}

// --- E3 (Table-2): classifier comparison ------------------------------------

func benchClassifier(b *testing.B, arch classify.Arch) {
	b.Helper()
	vocab := sensitive.NewVocabulary()
	clf, err := core.TrainClassifier(arch, vocab, experiments.DefaultSeed, 8)
	if err != nil {
		b.Fatal(err)
	}
	feats := clf.TokensToFeatures(vocab.Encode([]string{"my", "password", "is", "tango", "seven"}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.Predict(feats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(clf.ParamCount()), "params")
	b.ReportMetric(float64(clf.EstimateMACs())/4, "tee-cycles/inference")
}

func BenchmarkE3ClassifierCNN(b *testing.B)         { benchClassifier(b, classify.ArchCNN) }
func BenchmarkE3ClassifierTransformer(b *testing.B) { benchClassifier(b, classify.ArchTransformer) }
func BenchmarkE3ClassifierHybrid(b *testing.B)      { benchClassifier(b, classify.ArchHybrid) }

// BenchmarkE3bNoiseRobustness regenerates the noisy-ASR recall figure.
func BenchmarkE3bNoiseRobustness(b *testing.B) {
	var points []experiments.E3bPoint
	for i := 0; i < b.N; i++ {
		_, p, err := experiments.E3bNoiseRobustness(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		points = p
	}
	if len(points) == 15 {
		b.ReportMetric(points[0].Recall, "clean-recall")
		b.ReportMetric(points[12].Recall, "noisy-recall")
	}
}

// --- E4 (Fig-B): pipeline latency decomposition ------------------------------

func benchPipeline(b *testing.B, mode core.Mode) {
	b.Helper()
	utts, err := experiments.Workload(4, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{
			Mode: mode, Seed: experiments.DefaultSeed, FreqHz: experiments.FreqHz,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.RunSession(utts)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Latency.Mean()
	}
	b.ReportMetric(mean, "cycles/utterance")
	b.ReportMetric(mean/(experiments.FreqHz/1e3), "virtual-ms/utterance")
}

func BenchmarkE4PipelineBaseline(b *testing.B)       { benchPipeline(b, core.ModeBaseline) }
func BenchmarkE4PipelineSecureNoFilter(b *testing.B) { benchPipeline(b, core.ModeSecureNoFilter) }
func BenchmarkE4PipelineSecureFilter(b *testing.B)   { benchPipeline(b, core.ModeSecureFilter) }

// --- E5 (Table-3): privacy leakage -------------------------------------------

func BenchmarkE5Leakage(b *testing.B) {
	var rows []experiments.E5Row
	for i := 0; i < b.N; i++ {
		_, r, err := experiments.E5Leakage(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 4 {
		b.ReportMetric(float64(rows[0].CloudSensTokens), "baseline-leaked-tokens")
		b.ReportMetric(float64(rows[2].CloudSensTokens), "filtered-leaked-tokens")
	}
}

// --- E6 (Table-4): TCB minimization -------------------------------------------

func BenchmarkE6TCB(b *testing.B) {
	var res experiments.E6Result
	for i := 0; i < b.N; i++ {
		_, _, r, err := experiments.E6TCB()
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.ExactRed.LoCCutPct, "exact-loc-cut-%")
	b.ReportMetric(res.ClosureRed.LoCCutPct, "closure-loc-cut-%")
}

// --- E7 (Fig-C): energy ---------------------------------------------------------

func BenchmarkE7Energy(b *testing.B) {
	var rows []experiments.E7Row
	for i := 0; i < b.N; i++ {
		_, r, err := experiments.E7Energy(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[2].OverheadPct, "compute-overhead-%")
		b.ReportMetric(rows[2].TotalMJ, "secure-total-mJ")
	}
}

// --- E8 (Table-5): OS snooping ----------------------------------------------------

func BenchmarkE8Snoop(b *testing.B) {
	var rows []experiments.E8Row
	for i := 0; i < b.N; i++ {
		_, r, err := experiments.E8Snoop(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	if len(rows) == 3 {
		b.ReportMetric(rows[0].SuccessRatePct, "baseline-snoop-success-%")
		b.ReportMetric(rows[2].SuccessRatePct, "secure-snoop-success-%")
	}
}

// --- E9 (Fig-D): scalability --------------------------------------------------------

func BenchmarkE9Scale(b *testing.B) {
	var points []experiments.E9Point
	for i := 0; i < b.N; i++ {
		_, p, err := experiments.E9Scale(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		points = p
	}
	if len(points) == 4 {
		b.ReportMetric(points[3].BaselineKBPerSec, "baseline-KiB/s-at-8dev")
		b.ReportMetric(points[3].SecureKBPerSec, "secure-KiB/s-at-8dev")
	}
}

// --- E10 (Fig-E): fleet throughput -----------------------------------------------

// BenchmarkFleetThroughput sweeps a devices × shards grid. The reported
// wall-clock items/s is the simulator's fleet throughput (the perf
// trajectory BENCH_fleet.json snapshots); virtual p99 tracks the modelled
// per-item latency under TA batching.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, devices := range []int{16, 64} {
		for _, shards := range []int{2, 8} {
			b.Run(fmt.Sprintf("devices=%d/shards=%d", devices, shards), func(b *testing.B) {
				var last *fleet.Result
				for i := 0; i < b.N; i++ {
					res, err := fleet.Run(fleet.Config{
						Devices:    devices,
						Shards:     shards,
						Utterances: 2,
						Frames:     2,
						Seed:       experiments.DefaultSeed,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.LostFrames() != 0 {
						b.Fatalf("lost %d frames", res.LostFrames())
					}
					last = res
				}
				b.ReportMetric(last.Throughput(), "items/s")
				b.ReportMetric(last.Latency.Percentile(99)/1e3, "virtual-us-p99/item")
			})
		}
	}
}

// BenchmarkFleetThroughputAttested is the control-plane overhead probe:
// the same fleet as BenchmarkFleetThroughput's 64/8 point, but with the
// attested handshake and a staged 10%-canary model rollout live. The
// items/s it reports must stay within ~10% of the unattested figure —
// attestation and rollout are per-device one-offs, not per-item costs.
func BenchmarkFleetThroughputAttested(b *testing.B) {
	var last *fleet.Result
	for i := 0; i < b.N; i++ {
		res, err := fleet.Run(fleet.Config{
			Devices:    64,
			Shards:     8,
			Utterances: 2,
			Frames:     2,
			Seed:       experiments.DefaultSeed,
			Rollout:    &fleet.RolloutSpec{CanaryFraction: 0.1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.LostFrames() != 0 {
			b.Fatalf("lost %d frames", res.LostFrames())
		}
		if res.Rollout == nil || !res.Rollout.Converged {
			b.Fatalf("rollout did not converge: %v", res.ModelVersions)
		}
		last = res
	}
	b.ReportMetric(last.Throughput(), "items/s")
	b.ReportMetric(last.Latency.Percentile(99)/1e3, "virtual-us-p99/item")
}

// BenchmarkFleetThroughputTraced is the observability overhead probe:
// the same fleet as BenchmarkFleetThroughput's 64/8 point with frame
// telemetry at 1-in-1 sampling — every device traced, every span
// exported. The items/s it reports must stay within ~3% of the untraced
// figure (docs/PERFORMANCE.md); the benchgate regression family
// deliberately excludes it so tracing cost is visible but never gated.
func BenchmarkFleetThroughputTraced(b *testing.B) {
	var last *fleet.Result
	for i := 0; i < b.N; i++ {
		res, err := fleet.Run(fleet.Config{
			Devices:    64,
			Shards:     8,
			Utterances: 2,
			Frames:     2,
			Seed:       experiments.DefaultSeed,
			Trace:      &fleet.TraceSpec{SampleEvery: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.LostFrames() != 0 {
			b.Fatalf("lost %d frames", res.LostFrames())
		}
		if res.Telemetry == nil || res.Telemetry.SpanCount() == 0 {
			b.Fatal("traced run exported no spans")
		}
		last = res
	}
	b.ReportMetric(last.Throughput(), "items/s")
	b.ReportMetric(float64(last.Telemetry.SpanCount()), "spans")
	b.ReportMetric(last.Latency.Percentile(99)/1e3, "virtual-us-p99/item")
}

// BenchmarkFleetChurn measures elasticity overhead: the same 64-device
// attested fleet at 0%, 10% and 30% churn (joins + leaves at the same
// rate) with a mid-run shard drain and a weighted shard addition. The
// items/s deltas against churn=0% are the cost of elastic membership;
// the run fails if any frame is lost to the rebalance or a priority
// frame is shed.
func BenchmarkFleetChurn(b *testing.B) {
	for _, churn := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("churn=%d%%", int(churn*100)), func(b *testing.B) {
			var last *fleet.Result
			for i := 0; i < b.N; i++ {
				cfg := fleet.Config{
					Devices:    64,
					Shards:     4,
					Utterances: 2,
					Frames:     2,
					Seed:       experiments.DefaultSeed,
					Attest:     true,
					Policy:     "shed",
				}
				if churn > 0 {
					cfg.Churn = &fleet.ChurnSpec{JoinFraction: churn, LeaveFraction: churn}
					cfg.Rebalance = &fleet.RebalanceSpec{
						AtFraction: 0.5, DrainShard: 0, AddShards: 1, AddWeight: 2,
					}
				}
				res, err := fleet.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.LostFrames() != 0 {
					b.Fatalf("lost %d frames", res.LostFrames())
				}
				if churn > 0 && (res.Joined == 0 || res.Left == 0) {
					b.Fatalf("churn inactive: joined %d left %d", res.Joined, res.Left)
				}
				last = res
			}
			b.ReportMetric(last.Throughput(), "items/s")
			b.ReportMetric(float64(last.RebalancedFrames()), "rebalanced-frames")
			b.ReportMetric(float64(last.PriorityFrames()), "priority-frames")
		})
	}
}

// BenchmarkFleetScheduled is the shared-scheduler throughput probe: the
// CLI-default 1000-device/8-shard fleet with and without the
// cross-device TEE batch scheduler, same seed, so the two sub-benchmarks'
// items/s ratio is the scheduler's end-to-end delta at fleet scale
// (docs/PERFORMANCE.md records the trajectory — on a single-CPU host the
// legs sit at parity within run noise; the coalescing win needs
// concurrent producers). The scheduled leg
// asserts the invariants that make the numbers legitimate — nothing lost,
// no flush mixing model versions; bit-identical audits are pinned by
// TestSchedBatchEquivalenceProperty and the CI sched smoke.
func BenchmarkFleetScheduled(b *testing.B) {
	for _, scheduled := range []bool{false, true} {
		name := "sched=off"
		if scheduled {
			name = "sched=on"
		}
		b.Run(name, func(b *testing.B) {
			var last *fleet.Result
			for i := 0; i < b.N; i++ {
				cfg := fleet.Config{
					Devices:    1000,
					Shards:     8,
					Utterances: 4,
					Frames:     6,
					Seed:       1,
				}
				if scheduled {
					cfg.Sched = &fleet.SchedSpec{}
				}
				res, err := fleet.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.LostFrames() != 0 {
					b.Fatalf("lost %d frames", res.LostFrames())
				}
				if scheduled {
					if res.Sched == nil || res.Sched.Items == 0 {
						b.Fatal("scheduler classified nothing")
					}
					if res.Sched.MixedVersionFlushes != 0 {
						b.Fatalf("%d flushes mixed model versions", res.Sched.MixedVersionFlushes)
					}
				}
				last = res
			}
			b.ReportMetric(last.Throughput(), "items/s")
			b.ReportMetric(last.Latency.Percentile(99)/1e3, "virtual-us-p99/item")
			if scheduled {
				b.ReportMetric(last.Sched.MeanOccupancy, "items/flush")
			}
		})
	}
}

// BenchmarkFleetAsync is the event-driven engine's scale probe: 10⁴ and
// 10⁵ devices through the async pipeline with the shared scheduler, one
// utterance per speaker so every classified item reaches the scheduler as
// a true single-item enqueue and all occupancy is cross-device. The
// honest memory story is peak-live-pipelines (the most device pipelines
// ever constructed at once) and allocs/op: the population costs a task
// table, not a goroutine and pipeline per device. The 10⁵ leg is skipped
// under -short; run it explicitly for the scaling table in
// docs/PERFORMANCE.md.
func BenchmarkFleetAsync(b *testing.B) {
	for _, devices := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			if devices == 100_000 && testing.Short() {
				b.Skip("100k-device leg (run without -short for the scaling table)")
			}
			b.ReportAllocs()
			var last *fleet.Result
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(fleet.Config{
					Devices:    devices,
					Shards:     8,
					Utterances: 1,
					Frames:     1,
					Seed:       1,
					Sched:      &fleet.SchedSpec{},
					Async:      &fleet.AsyncSpec{},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.LostFrames() != 0 {
					b.Fatalf("lost %d frames", res.LostFrames())
				}
				if res.Async == nil || res.Async.PeakLive == 0 {
					b.Fatal("async engine reported no live pipelines")
				}
				if res.Async.PeakLive > devices/10 {
					b.Fatalf("peak live pipelines %d at %d devices — goroutine-per-device economics",
						res.Async.PeakLive, devices)
				}
				last = res
			}
			b.ReportMetric(last.Throughput(), "items/s")
			b.ReportMetric(float64(last.Async.PeakLive), "peak-live-pipelines")
			b.ReportMetric(last.Sched.MeanOccupancySteady, "items/flush")
		})
	}
}

// BenchmarkFleetHybridHE prices the hybrid HE+TEE split at fleet scale:
// the 64-device fleet with every registered mode weighted equally, so a
// quarter of the speaker cycle (and the doorbell cycle's third slot)
// runs its first classifier layer homomorphically at the provider. The
// wall-clock items/s joins the benchgate regression families; the run
// fails if the handoff loses a frame.
func BenchmarkFleetHybridHE(b *testing.B) {
	mix := fleet.MixSpec{}
	for _, m := range core.Modes() {
		mix[m] = 1
	}
	b.Run("mix=all-modes", func(b *testing.B) {
		var last *fleet.Result
		for i := 0; i < b.N; i++ {
			res, err := fleet.Run(fleet.Config{
				Devices:    64,
				Shards:     8,
				Utterances: 2,
				Frames:     2,
				Seed:       experiments.DefaultSeed,
				Mix:        mix,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.LostFrames() != 0 {
				b.Fatalf("lost %d frames", res.LostFrames())
			}
			if g := res.Groups[fleet.GroupKey{Kind: core.DeviceSpeaker, Mode: core.ModeHybridHE}]; g == nil || g.Devices == 0 {
				b.Fatal("no hybrid-he speakers in the mixed fleet")
			}
			last = res
		}
		b.ReportMetric(last.Throughput(), "items/s")
		b.ReportMetric(last.Latency.Percentile(99)/1e3, "virtual-us-p99/item")
	})
}

// BenchmarkE12ElasticFleet wraps the full elastic-churn experiment
// (static-vs-churned invariant check included).
func BenchmarkE12ElasticFleet(b *testing.B) {
	var last experiments.E12Result
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.E12ElasticFleet(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ItemsPerSec, "items/s")
	b.ReportMetric(float64(last.Compared), "devices-verified-identical")
}

// BenchmarkE13AttestationLifecycle wraps the attestation-lifecycle
// experiment (static-vs-rotated invariant, revocation probes, per-tenant
// federation) so the lifecycle control plane's overhead stays visible in
// the perf harness.
func BenchmarkE13AttestationLifecycle(b *testing.B) {
	var last experiments.E13Result
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.E13AttestationLifecycle(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ItemsPerSec, "items/s")
	b.ReportMetric(float64(last.Rotated), "devices-rotated")
	b.ReportMetric(float64(last.ProbeRejected), "revocation-probes-rejected")
}

// --- substrate micro-benchmarks (wall-clock health of the simulator) ------------

func BenchmarkSubstrateSMC(b *testing.B) {
	mon := tz.NewMonitor(tz.NewClock(), tz.DefaultCostModel())
	mon.Register(1, func(args [4]uint64) ([4]uint64, error) { return args, nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.SMC(1, [4]uint64{1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateTCBMinimize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeTCB(); err != nil {
			b.Fatal(err)
		}
	}
}
